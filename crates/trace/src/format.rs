//! The on-disk/in-memory trace container: header, event stream, trailer.
//!
//! Layout (all integers are varints from [`crate::wire`] unless noted):
//!
//! ```text
//! magic "WDTR" (4 raw bytes)
//! version
//! program-name length | program-name bytes (UTF-8)
//! program fingerprint (FNV-1a over instructions + globals)
//! mode tag (1 raw byte) | mode parameters (raw bytes, tag-dependent)
//! event count | event-stream length | event-stream bytes
//! outcome tag (1 raw byte) [| violation kind, pc index, address]
//! machine stats (5) | heap stats (5) | footprint (6)
//! ```
//!
//! The event stream itself is opaque at this layer — its grammar needs the
//! program to decode (address counts come from re-cracking), and is owned
//! by the [`mod@crate::record`] / [`mod@crate::replay`] modules.
//! The header and trailer are
//! self-contained, so `trace info` works without the program.

use std::fmt;

use watchdog_core::error::{Violation, ViolationKind};
use watchdog_core::machine::MachineStats;
use watchdog_core::prelude::*;
use watchdog_core::runtime::HeapStats;
use watchdog_isa::crack::BoundsUops;
use watchdog_isa::Program;
use watchdog_mem::Footprint;

use crate::wire::{get_uvarint, put_uvarint};

/// File magic: the first four bytes of every serialized trace.
pub const MAGIC: [u8; 4] = *b"WDTR";

/// Current format version. Readers reject other versions outright — the
/// format is compact, so re-recording beats migration shims.
pub const VERSION: u64 = 1;

/// Errors reading, decoding or replaying a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// The byte stream ended before the structure did.
    Truncated,
    /// The magic bytes are not `WDTR`.
    BadMagic,
    /// The trace was written by an unsupported format version.
    BadVersion(u64),
    /// A structurally invalid encoding (the reason names the spot).
    Corrupt(&'static str),
    /// The trace was recorded from a different program than the one
    /// offered for replay.
    ProgramMismatch {
        /// Program name recorded in the trace.
        trace: String,
        /// Name of the program offered for replay.
        program: String,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Truncated => write!(f, "trace truncated"),
            TraceError::BadMagic => write!(f, "not a watchdog trace (bad magic)"),
            TraceError::BadVersion(v) => {
                write!(f, "unsupported trace version {v} (expected {VERSION})")
            }
            TraceError::Corrupt(why) => write!(f, "corrupt trace: {why}"),
            TraceError::ProgramMismatch { trace, program } => write!(
                f,
                "trace was recorded from {trace:?}, not from the offered program {program:?} \
                 (or from a different build of it)"
            ),
        }
    }
}

impl std::error::Error for TraceError {}

/// How the recorded run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceOutcome {
    /// The program executed `halt`.
    Halted,
    /// A memory-safety violation stopped the run (§3.2 exception).
    Violation(Violation),
}

impl TraceOutcome {
    /// The violation, if the run ended in one.
    pub fn violation(&self) -> Option<Violation> {
        match *self {
            TraceOutcome::Halted => None,
            TraceOutcome::Violation(v) => Some(v),
        }
    }
}

/// Compact header/trailer summary for `trace info` and diagnostics.
#[derive(Debug, Clone)]
pub struct TraceInfo {
    /// Format version.
    pub version: u64,
    /// Recorded program name.
    pub program: String,
    /// Recorded mode label.
    pub mode: String,
    /// Committed (µop-producing) instructions in the event stream.
    pub events: u64,
    /// Encoded size of the event stream alone.
    pub event_bytes: usize,
    /// Total serialized size (header + events + trailer).
    pub total_bytes: usize,
    /// Dynamic macro-instructions of the recorded run.
    pub insts: u64,
    /// How the run ended, rendered for humans.
    pub outcome: String,
}

impl TraceInfo {
    /// Event-stream bytes per committed instruction.
    pub fn bytes_per_event(&self) -> f64 {
        if self.events == 0 {
            0.0
        } else {
            self.event_bytes as f64 / self.events as f64
        }
    }
}

/// A recorded commit stream plus everything needed to replay it and to
/// rebuild the functional half of a [`RunReport`] exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    pub(crate) mode: Mode,
    pub(crate) program: String,
    pub(crate) fingerprint: u64,
    pub(crate) events: Vec<u8>,
    pub(crate) event_count: u64,
    pub(crate) outcome: TraceOutcome,
    pub(crate) machine: MachineStats,
    pub(crate) heap: HeapStats,
    pub(crate) footprint: Footprint,
}

impl Trace {
    /// The mode the trace was recorded under.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// The recorded program's name.
    pub fn program(&self) -> &str {
        &self.program
    }

    /// The recorded program's fingerprint (see [`program_fingerprint`]).
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Number of committed (µop-producing) instructions recorded.
    pub fn event_count(&self) -> u64 {
        self.event_count
    }

    /// How the recorded run ended.
    pub fn outcome(&self) -> TraceOutcome {
        self.outcome
    }

    /// Architectural statistics of the recorded run.
    pub fn machine_stats(&self) -> MachineStats {
        self.machine
    }

    /// Heap-runtime statistics of the recorded run.
    pub fn heap_stats(&self) -> HeapStats {
        self.heap
    }

    /// Memory footprint of the recorded run.
    pub fn footprint(&self) -> Footprint {
        self.footprint
    }

    /// Header/trailer summary (no program needed).
    pub fn info(&self) -> TraceInfo {
        // Serialize the envelope alone (a hundred-odd bytes) to size the
        // whole container without copying the event stream.
        let mut envelope = Vec::with_capacity(160);
        self.put_header(&mut envelope);
        self.put_trailer(&mut envelope);
        TraceInfo {
            version: VERSION,
            program: self.program.clone(),
            mode: self.mode.label(),
            events: self.event_count,
            event_bytes: self.events.len(),
            total_bytes: envelope.len() + self.events.len(),
            insts: self.machine.insts,
            outcome: match self.outcome {
                TraceOutcome::Halted => "halted".to_string(),
                TraceOutcome::Violation(v) => v.to_string(),
            },
        }
    }

    /// Serializes the trace.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(self.events.len() + 160);
        self.put_header(&mut buf);
        buf.extend_from_slice(&self.events);
        self.put_trailer(&mut buf);
        buf
    }

    /// Everything before the event stream, ending with the event-stream
    /// length varint.
    fn put_header(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&MAGIC);
        put_uvarint(buf, VERSION);
        put_uvarint(buf, self.program.len() as u64);
        buf.extend_from_slice(self.program.as_bytes());
        put_uvarint(buf, self.fingerprint);
        put_mode(buf, self.mode);
        put_uvarint(buf, self.event_count);
        put_uvarint(buf, self.events.len() as u64);
    }

    /// Everything after the event stream: outcome + final statistics.
    fn put_trailer(&self, buf: &mut Vec<u8>) {
        match self.outcome {
            TraceOutcome::Halted => buf.push(0),
            TraceOutcome::Violation(v) => {
                buf.push(1);
                buf.push(kind_code(v.kind));
                put_uvarint(buf, v.pc_index as u64);
                put_uvarint(buf, v.addr);
            }
        }
        let m = self.machine;
        for v in [m.insts, m.mem_accesses, m.ptr_classified, m.calls, m.rets] {
            put_uvarint(buf, v);
        }
        let h = self.heap;
        for v in [
            h.mallocs,
            h.frees,
            h.reused,
            h.live_bytes,
            h.peak_live_bytes,
        ] {
            put_uvarint(buf, v);
        }
        let fp = self.footprint;
        for v in [
            fp.data_words,
            fp.shadow_words,
            fp.lock_words,
            fp.data_pages,
            fp.shadow_pages,
            fp.lock_pages,
        ] {
            put_uvarint(buf, v);
        }
    }

    /// Deserializes a trace.
    ///
    /// # Errors
    ///
    /// Any [`TraceError`] variant except `ProgramMismatch` (that one is
    /// raised at replay time, when a program is in hand).
    pub fn from_bytes(buf: &[u8]) -> Result<Trace, TraceError> {
        let mut pos = 0usize;
        let magic = buf.get(..4).ok_or(TraceError::Truncated)?;
        if magic != MAGIC {
            return Err(TraceError::BadMagic);
        }
        pos += 4;
        let version = get_uvarint(buf, &mut pos)?;
        if version != VERSION {
            return Err(TraceError::BadVersion(version));
        }
        let name_len = get_uvarint(buf, &mut pos)?;
        let name_bytes = take_slice(buf, &mut pos, name_len)?.to_vec();
        let program = String::from_utf8(name_bytes)
            .map_err(|_| TraceError::Corrupt("program name is not UTF-8"))?;
        let fingerprint = get_uvarint(buf, &mut pos)?;
        let mode = get_mode(buf, &mut pos)?;
        let event_count = get_uvarint(buf, &mut pos)?;
        let events_len = get_uvarint(buf, &mut pos)?;
        let events = take_slice(buf, &mut pos, events_len)?.to_vec();
        let outcome = match next_byte(buf, &mut pos)? {
            0 => TraceOutcome::Halted,
            1 => {
                let kind = kind_from_code(next_byte(buf, &mut pos)?)?;
                let pc_index = get_uvarint(buf, &mut pos)? as usize;
                let addr = get_uvarint(buf, &mut pos)?;
                TraceOutcome::Violation(Violation {
                    kind,
                    pc_index,
                    addr,
                })
            }
            _ => return Err(TraceError::Corrupt("unknown outcome tag")),
        };
        let u = |pos: &mut usize| get_uvarint(buf, pos);
        let machine = MachineStats {
            insts: u(&mut pos)?,
            mem_accesses: u(&mut pos)?,
            ptr_classified: u(&mut pos)?,
            calls: u(&mut pos)?,
            rets: u(&mut pos)?,
        };
        let heap = HeapStats {
            mallocs: u(&mut pos)?,
            frees: u(&mut pos)?,
            reused: u(&mut pos)?,
            live_bytes: u(&mut pos)?,
            peak_live_bytes: u(&mut pos)?,
        };
        let footprint = Footprint {
            data_words: u(&mut pos)?,
            shadow_words: u(&mut pos)?,
            lock_words: u(&mut pos)?,
            data_pages: u(&mut pos)?,
            shadow_pages: u(&mut pos)?,
            lock_pages: u(&mut pos)?,
        };
        if pos != buf.len() {
            return Err(TraceError::Corrupt("trailing bytes after trailer"));
        }
        Ok(Trace {
            mode,
            program,
            fingerprint,
            events,
            event_count,
            outcome,
            machine,
            heap,
            footprint,
        })
    }
}

fn next_byte(buf: &[u8], pos: &mut usize) -> Result<u8, TraceError> {
    let b = *buf.get(*pos).ok_or(TraceError::Truncated)?;
    *pos += 1;
    Ok(b)
}

/// Takes a `len`-byte slice at `*pos`, advancing it. `len` arrives from
/// an untrusted varint, so the end position is computed with checked
/// arithmetic — a crafted huge length is `Truncated`, never a panic.
fn take_slice<'a>(buf: &'a [u8], pos: &mut usize, len: u64) -> Result<&'a [u8], TraceError> {
    let len = usize::try_from(len).map_err(|_| TraceError::Truncated)?;
    let end = pos.checked_add(len).ok_or(TraceError::Truncated)?;
    let s = buf.get(*pos..end).ok_or(TraceError::Truncated)?;
    *pos = end;
    Ok(s)
}

fn ptr_code(p: PointerId) -> u8 {
    match p {
        PointerId::Conservative => 0,
        PointerId::IsaAssisted => 1,
    }
}

fn ptr_from_code(b: u8) -> Result<PointerId, TraceError> {
    match b {
        0 => Ok(PointerId::Conservative),
        1 => Ok(PointerId::IsaAssisted),
        _ => Err(TraceError::Corrupt("unknown pointer-identification code")),
    }
}

/// Appends the compact byte encoding of a [`Mode`] (tag byte plus
/// tag-dependent parameter bytes). Shared with the campaign layer, which
/// embeds modes in job cells and ledger records under the same encoding
/// discipline as the trace header.
pub fn put_mode(buf: &mut Vec<u8>, mode: Mode) {
    match mode {
        Mode::Baseline => buf.push(0),
        Mode::LocationBased => buf.push(1),
        Mode::Watchdog {
            ptr,
            lock_cache,
            ideal_shadow,
        } => {
            buf.push(2);
            buf.push(ptr_code(ptr));
            buf.push(u8::from(lock_cache) | (u8::from(ideal_shadow) << 1));
        }
        Mode::WatchdogBounds { ptr, uops } => {
            buf.push(3);
            buf.push(ptr_code(ptr));
            buf.push(match uops {
                BoundsUops::Fused => 0,
                BoundsUops::Split => 1,
            });
        }
    }
}

/// Reads a [`Mode`] encoded by [`put_mode`] at `*pos`, advancing it.
///
/// # Errors
///
/// [`TraceError::Truncated`] when the buffer ends mid-encoding;
/// [`TraceError::Corrupt`] on an unknown tag or parameter byte.
pub fn get_mode(buf: &[u8], pos: &mut usize) -> Result<Mode, TraceError> {
    match next_byte(buf, pos)? {
        0 => Ok(Mode::Baseline),
        1 => Ok(Mode::LocationBased),
        2 => {
            let ptr = ptr_from_code(next_byte(buf, pos)?)?;
            let flags = next_byte(buf, pos)?;
            if flags > 3 {
                return Err(TraceError::Corrupt("unknown watchdog mode flags"));
            }
            Ok(Mode::Watchdog {
                ptr,
                lock_cache: flags & 1 != 0,
                ideal_shadow: flags & 2 != 0,
            })
        }
        3 => {
            let ptr = ptr_from_code(next_byte(buf, pos)?)?;
            let uops = match next_byte(buf, pos)? {
                0 => BoundsUops::Fused,
                1 => BoundsUops::Split,
                _ => return Err(TraceError::Corrupt("unknown bounds-µop code")),
            };
            Ok(Mode::WatchdogBounds { ptr, uops })
        }
        _ => Err(TraceError::Corrupt("unknown mode tag")),
    }
}

fn kind_code(k: ViolationKind) -> u8 {
    match k {
        ViolationKind::UseAfterFree => 0,
        ViolationKind::UseAfterReturn => 1,
        ViolationKind::WildPointer => 2,
        ViolationKind::DoubleFree => 3,
        ViolationKind::InvalidFree => 4,
        ViolationKind::OutOfBounds => 5,
    }
}

fn kind_from_code(b: u8) -> Result<ViolationKind, TraceError> {
    Ok(match b {
        0 => ViolationKind::UseAfterFree,
        1 => ViolationKind::UseAfterReturn,
        2 => ViolationKind::WildPointer,
        3 => ViolationKind::DoubleFree,
        4 => ViolationKind::InvalidFree,
        5 => ViolationKind::OutOfBounds,
        _ => return Err(TraceError::Corrupt("unknown violation kind")),
    })
}

/// FNV-1a fingerprint of a program's instructions and globals.
///
/// Recorded in every trace header and checked at replay time, so a trace
/// can never silently drive the timing model with the wrong program (pc
/// indices and crack expansions would be garbage).
pub fn program_fingerprint(p: &Program) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    eat(p.name().as_bytes());
    eat(&(p.len() as u64).to_le_bytes());
    for i in 0..p.len() {
        eat(format!("{:?}", p.inst(i)).as_bytes());
    }
    for &(addr, val) in p.global_words() {
        eat(&addr.to_le_bytes());
        eat(&val.to_le_bytes());
    }
    for &(slot, target) in p.global_ptrs() {
        eat(&slot.to_le_bytes());
        eat(&target.to_le_bytes());
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn arbitrary_trace(seed: u64, events: Vec<u8>, name: String) -> Trace {
        // Derive every header/trailer field from the seed so the property
        // test sweeps modes, outcomes and counter magnitudes together.
        let modes = [
            Mode::Baseline,
            Mode::LocationBased,
            Mode::watchdog(),
            Mode::watchdog_conservative(),
            Mode::Watchdog {
                ptr: PointerId::IsaAssisted,
                lock_cache: false,
                ideal_shadow: true,
            },
            Mode::WatchdogBounds {
                ptr: PointerId::Conservative,
                uops: BoundsUops::Split,
            },
        ];
        let kinds = [
            ViolationKind::UseAfterFree,
            ViolationKind::UseAfterReturn,
            ViolationKind::WildPointer,
            ViolationKind::DoubleFree,
            ViolationKind::InvalidFree,
            ViolationKind::OutOfBounds,
        ];
        let x = |k: u64| {
            seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .rotate_left(k as u32)
        };
        let outcome = if seed.is_multiple_of(3) {
            TraceOutcome::Halted
        } else {
            TraceOutcome::Violation(Violation {
                kind: kinds[(seed % 6) as usize],
                pc_index: x(1) as usize % 100_000,
                addr: x(2),
            })
        };
        Trace {
            mode: modes[(seed % 6) as usize],
            program: name,
            fingerprint: x(3),
            event_count: x(4) % 1_000_000,
            events,
            outcome,
            machine: watchdog_core::machine::MachineStats {
                insts: x(5),
                mem_accesses: x(6),
                ptr_classified: x(7),
                calls: x(8),
                rets: x(9),
            },
            heap: HeapStats {
                mallocs: x(10),
                frees: x(11),
                reused: x(12),
                live_bytes: x(13),
                peak_live_bytes: x(14),
            },
            footprint: Footprint {
                data_words: x(15),
                shadow_words: x(16),
                lock_words: x(17),
                data_pages: x(18),
                shadow_pages: x(19),
                lock_pages: x(20),
            },
        }
    }

    proptest! {
        /// The satellite property: serialize→deserialize identity over
        /// arbitrary event streams (and arbitrary headers/trailers).
        #[test]
        fn serialization_round_trips(
            seed in any::<u64>(),
            events in proptest::collection::vec(any::<u8>(), 0..512),
            name in proptest::collection::vec(97u8..123, 0..24),
        ) {
            let name = String::from_utf8(name).unwrap();
            let t = arbitrary_trace(seed, events, name);
            let bytes = t.to_bytes();
            let back = Trace::from_bytes(&bytes).unwrap();
            prop_assert_eq!(t, back);
        }

        /// Any truncation of a valid trace is rejected, never misread.
        #[test]
        fn truncations_are_rejected(
            seed in any::<u64>(),
            events in proptest::collection::vec(any::<u8>(), 0..64),
            cut in any::<u64>(),
        ) {
            let t = arbitrary_trace(seed, events, "p".into());
            let bytes = t.to_bytes();
            let cut = (cut as usize) % bytes.len();
            prop_assert!(Trace::from_bytes(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn bad_magic_and_version_are_rejected() {
        let t = arbitrary_trace(1, vec![], "x".into());
        let mut bytes = t.to_bytes();
        bytes[0] = b'X';
        assert_eq!(Trace::from_bytes(&bytes), Err(TraceError::BadMagic));
        let mut bytes = t.to_bytes();
        bytes[4] = 99; // single-byte varint version field
        assert_eq!(Trace::from_bytes(&bytes), Err(TraceError::BadVersion(99)));
    }

    #[test]
    fn huge_length_varints_are_rejected_not_panicked() {
        // A crafted name-length of u64::MAX must fail closed (the naive
        // `pos + len` slice would overflow and panic in debug builds).
        let mut bytes = vec![];
        bytes.extend_from_slice(&MAGIC);
        bytes.push(1); // version
        bytes.extend_from_slice(&[0xff; 9]); // name length varint...
        bytes.push(0x01); // ...= u64::MAX
        assert_eq!(Trace::from_bytes(&bytes), Err(TraceError::Truncated));
        // Same for the event-stream length.
        let t = arbitrary_trace(3, vec![], "x".into());
        let good = t.to_bytes();
        let events_len_at = good.len() - {
            // Rebuild everything after the events-length varint to find
            // its offset: trailer + events (empty here) + 1 varint byte.
            let mut tail = Vec::new();
            t.put_trailer(&mut tail);
            tail.len() + 1
        };
        let mut bytes = good[..events_len_at].to_vec();
        bytes.extend_from_slice(&[0xff; 9]);
        bytes.push(0x01);
        assert_eq!(Trace::from_bytes(&bytes), Err(TraceError::Truncated));
    }

    #[test]
    fn info_total_bytes_matches_serialization() {
        for seed in 0..16 {
            let t = arbitrary_trace(seed, vec![7; (seed as usize) * 13], "prog".into());
            assert_eq!(t.info().total_bytes, t.to_bytes().len());
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let t = arbitrary_trace(2, vec![1, 2, 3], "x".into());
        let mut bytes = t.to_bytes();
        bytes.push(0);
        assert!(matches!(
            Trace::from_bytes(&bytes),
            Err(TraceError::Corrupt(_))
        ));
    }

    #[test]
    fn fingerprints_distinguish_programs() {
        use watchdog_isa::{Gpr, ProgramBuilder};
        let build = |imm: i64| {
            let mut b = ProgramBuilder::new("fp");
            b.li(Gpr::new(0), imm);
            b.halt();
            b.build().unwrap()
        };
        let a = program_fingerprint(&build(1));
        let b = program_fingerprint(&build(1));
        let c = program_fingerprint(&build(2));
        assert_eq!(a, b, "fingerprints are deterministic");
        assert_ne!(a, c, "fingerprints see instruction operands");
    }

    #[test]
    fn errors_display_distinctly() {
        let errors = [
            TraceError::Truncated,
            TraceError::BadMagic,
            TraceError::BadVersion(7),
            TraceError::Corrupt("x"),
            TraceError::ProgramMismatch {
                trace: "a".into(),
                program: "b".into(),
            },
        ];
        let mut seen = std::collections::HashSet::new();
        for e in errors {
            assert!(seen.insert(e.to_string()));
        }
    }
}

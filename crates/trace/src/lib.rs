//! **watchdog-trace** — commit-stream capture and trace-driven timing
//! replay.
//!
//! The paper's evaluation (§9) is a grid of microarchitectural ablations:
//! lock-location cache size and associativity, metadata-µop overhead,
//! idealized shadow accesses. Each point used to cost a full
//! functional+timed re-simulation. This crate decouples the two halves:
//!
//! * [`record()`] runs the **functional machine once** (no µop cracking at
//!   all) and captures the committed instruction stream — per commit, one
//!   delta-encoded event holding the pointer-classification bit, the
//!   rename-stage select-fold state, the resolved memory-µop addresses
//!   and the branch outcome. Identifier allocation/kill traffic (`malloc`,
//!   `free`, `call`/`ret`, `newident`/`killident`) is captured the same
//!   way: as the lock-location addresses those instructions touch.
//! * [`replay()`] drives the out-of-order timing core from the trace under
//!   any [`ReplayConfig`] — re-cracking statically through the per-PC
//!   crack cache and assembling µops with the *same*
//!   [`assemble_cracked`](watchdog_isa::crack::assemble_cracked) the live
//!   machine uses — without re-executing a single architectural
//!   instruction.
//!
//! The correctness anchor is **exact equivalence**: a replayed
//! [`RunReport`](watchdog_core::RunReport) matches the live timed
//! simulation field for field — cycles, µop tag breakdown, hierarchy and
//! predictor statistics, crack-cache counters, violation, heap and
//! footprint. The equivalence suites (this crate's integration tests, the
//! workspace's `trace_equivalence` tests and the CI `trace selftest`
//! smoke) assert it over the benchmark suite and fuzz-generated programs.
//!
//! # One-pass configuration sweeps
//!
//! ```
//! use watchdog_core::prelude::*;
//! use watchdog_isa::{Gpr, ProgramBuilder};
//! use watchdog_mem::CacheConfig;
//! use watchdog_trace::{record, replay, ReplayConfig};
//!
//! let mut b = ProgramBuilder::new("demo");
//! let (p, sz) = (Gpr::new(0), Gpr::new(1));
//! b.li(sz, 64);
//! b.malloc(p, sz);
//! b.st8(sz, p, 0);
//! b.free(p);
//! b.halt();
//! let program = b.build()?;
//!
//! // One functional pass...
//! let trace = record(&program, Mode::watchdog_conservative(), 1_000_000)?;
//! // ...then N cheap timing replays under different LL$ sizes.
//! for kb in [1u64, 4, 16] {
//!     let mut cfg = ReplayConfig::default();
//!     cfg.hierarchy.ll = CacheConfig::new(kb * 1024, 8, 64);
//!     let report = replay(&program, &trace, &cfg)?;
//!     assert!(report.cycles() > 0);
//! }
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! Traces serialize with [`Trace::to_bytes`]/[`Trace::from_bytes`] (a
//! compact, versioned format — see the [`mod@format`] module) for the
//! `watchdog-cli trace record/replay/info` workflow.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod format;
pub mod record;
pub mod replay;
pub mod wire;

pub use format::{program_fingerprint, Trace, TraceError, TraceInfo, TraceOutcome};
pub use record::{record, TraceRecorder};
pub use replay::{
    replay, replay_instrumented, replay_reference, replay_with_stats, verify_replay, ReplayConfig,
    ReplayStats,
};

//! Primitive wire encodings: LEB128 varints and zigzag signed deltas.
//!
//! The trace format is built entirely from these two primitives plus raw
//! bytes, so "versioned" reduces to "the event grammar may change, the
//! scalars cannot": unsigned values are LEB128 (7 bits per byte, high bit
//! = continuation), signed deltas are zigzag-mapped first so small
//! magnitudes of either sign stay short.

use crate::TraceError;

/// Appends `v` as a LEB128 varint.
pub fn put_uvarint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Reads a LEB128 varint at `*pos`, advancing it.
///
/// # Errors
///
/// [`TraceError::Truncated`] when the buffer ends mid-varint;
/// [`TraceError::Corrupt`] when the encoding overflows 64 bits.
pub fn get_uvarint(buf: &[u8], pos: &mut usize) -> Result<u64, TraceError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let Some(&byte) = buf.get(*pos) else {
            return Err(TraceError::Truncated);
        };
        *pos += 1;
        if shift >= 64 || (shift == 63 && byte > 1) {
            return Err(TraceError::Corrupt("varint overflows 64 bits"));
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Zigzag-maps a signed value so small magnitudes encode short.
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Appends a signed value as a zigzag varint.
pub fn put_ivarint(buf: &mut Vec<u8>, v: i64) {
    put_uvarint(buf, zigzag(v));
}

/// Reads a zigzag varint at `*pos`, advancing it.
///
/// # Errors
///
/// Exactly as [`get_uvarint`].
pub fn get_ivarint(buf: &[u8], pos: &mut usize) -> Result<i64, TraceError> {
    get_uvarint(buf, pos).map(unzigzag)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn uvarint_edge_values_round_trip() {
        for v in [0u64, 1, 127, 128, 16383, 16384, u64::MAX - 1, u64::MAX] {
            let mut buf = Vec::new();
            put_uvarint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(get_uvarint(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn zigzag_maps_small_magnitudes_to_small_codes() {
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
        assert_eq!(zigzag(-2), 3);
        for v in [i64::MIN, i64::MAX, -1, 0, 1, 123_456_789] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn truncated_and_overlong_varints_are_rejected() {
        let mut buf = Vec::new();
        put_uvarint(&mut buf, u64::MAX);
        buf.pop();
        let mut pos = 0;
        assert_eq!(get_uvarint(&buf, &mut pos), Err(TraceError::Truncated));
        // Eleven continuation bytes can never fit in 64 bits.
        let overlong = [0x80u8; 11];
        let mut pos = 0;
        assert!(matches!(
            get_uvarint(&overlong, &mut pos),
            Err(TraceError::Corrupt(_))
        ));
    }

    proptest! {
        #[test]
        fn uvarint_round_trips(values in proptest::collection::vec(any::<u64>(), 0..64)) {
            let mut buf = Vec::new();
            for &v in &values {
                put_uvarint(&mut buf, v);
            }
            let mut pos = 0;
            for &v in &values {
                prop_assert_eq!(get_uvarint(&buf, &mut pos).unwrap(), v);
            }
            prop_assert_eq!(pos, buf.len());
        }

        #[test]
        fn ivarint_round_trips(values in proptest::collection::vec(any::<u64>(), 0..64)) {
            let values: Vec<i64> = values.iter().map(|&v| v as i64).collect();
            let mut buf = Vec::new();
            for &v in &values {
                put_ivarint(&mut buf, v);
            }
            let mut pos = 0;
            for &v in &values {
                prop_assert_eq!(get_ivarint(&buf, &mut pos).unwrap(), v);
            }
            prop_assert_eq!(pos, buf.len());
        }
    }
}

//! Deterministic fault injection for the worker process.
//!
//! The campaign's whole value is surviving worker failure, so every
//! failure path must be exercisable on demand rather than discovered in
//! production. The `WATCHDOG_FAULT` environment variable (set directly,
//! or via `watchdog-cli campaign --fault`) carries a [`FaultPlan`]: a
//! comma-separated list of `kind@cell` points, each making the worker
//! misbehave when it receives that cell:
//!
//! | kind | worker behaviour |
//! |---|---|
//! | `panic` | panics (abnormal exit, message on stderr) |
//! | `exit` | exits with status 3, no result frame |
//! | `hang` | sleeps forever; reaped by the heartbeat timeout |
//! | `corrupt` | emits a result frame with a corrupted payload |
//! | `truncate` | emits half a frame, then exits |
//!
//! A bare `kind@cell` fires on the **first attempt only** — the retried
//! cell then succeeds, which is how the fault suite proves the final
//! ledger is unaffected. `kind@cell!` fires on **every** attempt, which
//! is how it proves the retry budget is bounded.

use std::fmt;

/// What the worker does at an injected fault point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic (crash with a nonzero status and a stderr message).
    Panic,
    /// `std::process::exit(3)` without a result frame.
    Exit,
    /// Sleep forever (until the coordinator's timeout reaps the worker).
    Hang,
    /// Emit a result frame whose payload fails the checksum.
    Corrupt,
    /// Emit a torn frame (length prefix promising more bytes than sent),
    /// then exit.
    Truncate,
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FaultKind::Panic => "panic",
            FaultKind::Exit => "exit",
            FaultKind::Hang => "hang",
            FaultKind::Corrupt => "corrupt",
            FaultKind::Truncate => "truncate",
        })
    }
}

/// One injected fault point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPoint {
    /// The misbehaviour.
    pub kind: FaultKind,
    /// The cell id it triggers on.
    pub cell: u32,
    /// Fire on every attempt (`kind@cell!`) instead of only the first.
    pub every_attempt: bool,
}

/// A parsed `WATCHDOG_FAULT` specification.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    points: Vec<FaultPoint>,
}

/// Environment variable carrying the fault plan into worker processes.
pub const FAULT_ENV: &str = "WATCHDOG_FAULT";

impl FaultPlan {
    /// Parses a specification like `panic@3`, `exit@0,hang@9!`.
    ///
    /// # Errors
    ///
    /// A message naming the bad clause and listing the valid kinds (the
    /// `scale_from_args` error-listing discipline).
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut points = Vec::new();
        for clause in spec.split(',').map(str::trim).filter(|c| !c.is_empty()) {
            let (kind_s, rest) = clause.split_once('@').ok_or_else(|| {
                format!("bad fault clause {clause:?}: expected kind@cell (e.g. panic@3)")
            })?;
            let kind = match kind_s {
                "panic" => FaultKind::Panic,
                "exit" => FaultKind::Exit,
                "hang" => FaultKind::Hang,
                "corrupt" => FaultKind::Corrupt,
                "truncate" => FaultKind::Truncate,
                other => {
                    return Err(format!(
                        "unknown fault kind {other:?}: valid kinds are panic, exit, hang, \
                         corrupt, truncate (format kind@cell, or kind@cell! to fire on \
                         every attempt)"
                    ))
                }
            };
            let (cell_s, every_attempt) = match rest.strip_suffix('!') {
                Some(c) => (c, true),
                None => (rest, false),
            };
            let cell = cell_s.parse::<u32>().map_err(|_| {
                format!("bad fault clause {clause:?}: cell must be an unsigned integer")
            })?;
            points.push(FaultPoint {
                kind,
                cell,
                every_attempt,
            });
        }
        Ok(FaultPlan { points })
    }

    /// Reads the plan from [`FAULT_ENV`] (absent or empty = no faults).
    ///
    /// # Errors
    ///
    /// As [`FaultPlan::parse`].
    pub fn from_env() -> Result<FaultPlan, String> {
        match std::env::var(FAULT_ENV) {
            Ok(spec) => FaultPlan::parse(&spec),
            Err(_) => Ok(FaultPlan::default()),
        }
    }

    /// The fault to inject for `(cell, attempt)`, if any.
    pub fn fault_for(&self, cell: u32, attempt: u32) -> Option<FaultKind> {
        self.points
            .iter()
            .find(|p| p.cell == cell && (p.every_attempt || attempt == 0))
            .map(|p| p.kind)
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_kind_and_the_every_attempt_marker() {
        let p = FaultPlan::parse("panic@0, exit@5,hang@9!,corrupt@2,truncate@7").unwrap();
        assert_eq!(p.fault_for(0, 0), Some(FaultKind::Panic));
        assert_eq!(p.fault_for(0, 1), None, "single-shot faults fire once");
        assert_eq!(p.fault_for(5, 0), Some(FaultKind::Exit));
        assert_eq!(p.fault_for(9, 0), Some(FaultKind::Hang));
        assert_eq!(p.fault_for(9, 7), Some(FaultKind::Hang), "! fires always");
        assert_eq!(p.fault_for(2, 0), Some(FaultKind::Corrupt));
        assert_eq!(p.fault_for(7, 0), Some(FaultKind::Truncate));
        assert_eq!(p.fault_for(1, 0), None);
    }

    #[test]
    fn empty_specs_are_empty_plans() {
        assert!(FaultPlan::parse("").unwrap().is_empty());
        assert!(FaultPlan::parse(" , ").unwrap().is_empty());
    }

    #[test]
    fn errors_list_the_valid_kinds() {
        let e = FaultPlan::parse("boom@3").unwrap_err();
        assert!(
            e.contains("panic, exit, hang, corrupt, truncate"),
            "error must list valid kinds: {e}"
        );
        let e = FaultPlan::parse("panic").unwrap_err();
        assert!(e.contains("kind@cell"), "{e}");
        let e = FaultPlan::parse("panic@many").unwrap_err();
        assert!(e.contains("unsigned integer"), "{e}");
    }
}

//! The campaign coordinator: a multi-process job pool with crash
//! isolation, a heartbeat watchdog, bounded retries, and the crash-safe
//! ledger as its single source of truth.
//!
//! Control flow: resolve the ledger (fresh, or resumed with the torn
//! tail truncated and completed cells skipped), spawn N workers, then a
//! single event loop — dispatch jobs to idle workers, collect `Done`
//! frames off a shared channel fed by one reader thread per worker
//! process, reap workers that blow the heartbeat timeout, respawn dead
//! workers with bounded exponential backoff, and retry each failed cell
//! a bounded number of times before recording it as
//! `retries-exhausted`. On completion the ledger is compacted to
//! canonical cell-id order, making the file byte-identical to a serial
//! single-process run's ledger.

use std::collections::{BTreeMap, HashSet, VecDeque};
use std::fmt;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::mpsc;
use std::time::{Duration, Instant};

use crate::cell::{execute_cell, CampaignSpec, CellOutcome, KIND_RETRIES_EXHAUSTED};
use crate::events::{f_int, f_num, f_str, EventLog, EVENTS_SCHEMA};
use crate::fault::FAULT_ENV;
use crate::frame::{read_frame, write_frame, CoordMsg, FrameError, WorkerMsg, PROTO_VERSION};
use crate::ledger::{
    canonical_bytes, CellRecord, LedgerError, LedgerHeader, LedgerWriter, LEDGER_VERSION,
};
use crate::worker::WORKER_TELEMETRY_ENV;

/// Campaign-level configuration (everything except the cell list).
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Binary to re-exec as `<worker_exe> worker` children.
    pub worker_exe: PathBuf,
    /// Worker process count.
    pub jobs: usize,
    /// Heartbeat timeout: a worker holding one cell longer than this is
    /// presumed hung, killed, and its cell retried.
    pub timeout: Duration,
    /// Retries per cell beyond the first attempt before the cell is
    /// recorded as `retries-exhausted`.
    pub max_retries: u32,
    /// Respawns per worker slot before the slot is abandoned.
    pub max_respawns: u32,
    /// Base of the per-slot respawn backoff (doubles per respawn, capped
    /// at 1 s).
    pub backoff: Duration,
    /// Fault plan forwarded to workers via [`FAULT_ENV`].
    pub fault: Option<String>,
    /// Emit a progress line to stderr every ~2 s.
    pub progress: bool,
    /// JSONL event-stream path (`--events`): the campaign's flight
    /// recorder. `None` disables it at zero cost.
    pub events: Option<PathBuf>,
}

impl CampaignConfig {
    /// Defaults: 2 workers, 30 s timeout, 2 retries, 8 respawns per
    /// slot, 50 ms backoff base, no faults, no progress.
    pub fn new(worker_exe: impl Into<PathBuf>) -> CampaignConfig {
        CampaignConfig {
            worker_exe: worker_exe.into(),
            jobs: 2,
            timeout: Duration::from_secs(30),
            max_retries: 2,
            max_respawns: 8,
            backoff: Duration::from_millis(50),
            fault: None,
            progress: false,
            events: None,
        }
    }
}

/// What a finished campaign did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CampaignStats {
    /// Total cells in the campaign.
    pub cells: u32,
    /// Cells already complete in the resumed ledger.
    pub resumed: u32,
    /// Cells executed this run.
    pub completed: u32,
    /// Cell retries (re-dispatches after a worker failure).
    pub retries: u32,
    /// Worker processes respawned after a crash or reap.
    pub respawns: u32,
    /// Cells whose recorded outcome is a failure.
    pub failures: u32,
    /// Distinct (violation kind, faulting pc) failure signatures.
    pub unique_failures: u32,
    /// Wall-clock duration of this run in milliseconds.
    pub elapsed_ms: u64,
}

/// Errors that abort a campaign.
#[derive(Debug)]
pub enum CampaignError {
    /// A ledger error (stale ledger refused, parse failure, I/O).
    Ledger(LedgerError),
    /// An I/O error outside the ledger (spawning workers, pipes).
    Io(io::Error),
    /// Every worker slot exhausted its respawn budget with cells still
    /// pending.
    WorkersExhausted {
        /// Cells left unexecuted.
        pending: usize,
    },
    /// A worker spoke an incompatible protocol version.
    Protocol(String),
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::Ledger(e) => write!(f, "{e}"),
            CampaignError::Io(e) => write!(f, "campaign i/o error: {e}"),
            CampaignError::WorkersExhausted { pending } => write!(
                f,
                "all workers exhausted their respawn budget with {pending} cell(s) pending"
            ),
            CampaignError::Protocol(msg) => write!(f, "worker protocol error: {msg}"),
        }
    }
}

impl std::error::Error for CampaignError {}

impl From<LedgerError> for CampaignError {
    fn from(e: LedgerError) -> Self {
        CampaignError::Ledger(e)
    }
}

impl From<io::Error> for CampaignError {
    fn from(e: io::Error) -> Self {
        CampaignError::Io(e)
    }
}

/// Events a worker's reader thread feeds the coordinator loop, tagged
/// with the slot and a generation counter so frames from an
/// already-killed incarnation are discarded instead of misattributed.
enum SlotEvent {
    Msg(WorkerMsg),
    Bad(String),
    Eof,
}

/// One worker slot: the live child (if any) and its scheduling state.
struct Slot {
    child: Option<Child>,
    stdin: Option<ChildStdin>,
    /// Incremented per spawn; stale reader-thread events are filtered.
    gen: u64,
    /// `Hello` received — eligible for jobs.
    ready: bool,
    /// Outstanding job: (cell, attempt, deadline).
    busy: Option<(u32, u32, Instant)>,
    /// When the current incarnation was spawned (bounds the Hello wait).
    spawned_at: Instant,
    respawns: u32,
    /// Earliest instant the next respawn may happen (backoff).
    next_spawn: Instant,
    dead: bool,
}

/// Runs a campaign. `resume` replays `ledger_path` (refusing a ledger
/// from a different campaign) and schedules only the missing cells;
/// otherwise the ledger is created fresh. Returns the run's stats; the
/// finished ledger on disk is in canonical order.
///
/// # Errors
///
/// See [`CampaignError`]. Failing *cells* are not errors — they are
/// recorded outcomes; inspect [`CampaignStats::failures`].
pub fn run_campaign(
    spec: &CampaignSpec,
    cfg: &CampaignConfig,
    ledger_path: &Path,
    resume: bool,
) -> Result<CampaignStats, CampaignError> {
    let start = Instant::now();
    let cells = u32::try_from(spec.cells.len()).expect("cell count fits u32");
    let header = LedgerHeader {
        version: LEDGER_VERSION,
        spec_hash: spec.spec_hash(),
        probe_fingerprint: spec.probe_fingerprint(),
        cells,
    };

    let (mut writer, mut done) = if resume {
        LedgerWriter::resume(ledger_path, header)?
    } else {
        (LedgerWriter::create(ledger_path, header)?, BTreeMap::new())
    };
    let resumed = u32::try_from(done.len()).unwrap_or(u32::MAX);

    let mut pending: VecDeque<(u32, u32)> = (0..cells)
        .filter(|c| !done.contains_key(c))
        .map(|c| (c, 0))
        .collect();

    let mut stats = CampaignStats {
        cells,
        resumed,
        completed: 0,
        retries: 0,
        respawns: 0,
        failures: 0,
        unique_failures: 0,
        elapsed_ms: 0,
    };

    let mut events = match &cfg.events {
        Some(path) => EventLog::create(path)?,
        None => EventLog::disabled(),
    };
    events.emit(
        "campaign_start",
        vec![
            f_str("schema", EVENTS_SCHEMA),
            f_int("cells", u64::from(cells)),
            f_int("resumed", u64::from(resumed)),
            f_int("jobs", cfg.jobs.max(1) as u64),
        ],
    );

    let jobs = cfg.jobs.max(1);
    let (tx, rx) = mpsc::channel::<(usize, u64, SlotEvent)>();
    let mut slots: Vec<Slot> = (0..jobs)
        .map(|_| Slot {
            child: None,
            stdin: None,
            gen: 0,
            ready: false,
            busy: None,
            spawned_at: start,
            respawns: 0,
            next_spawn: start,
            dead: false,
        })
        .collect();

    let mut last_progress = Instant::now();
    let progress_every = Duration::from_secs(2);

    let result = loop {
        if done.len() as u32 == cells {
            break Ok(());
        }
        let now = Instant::now();

        // Reap: a busy worker past its deadline, or a spawned worker
        // that never said Hello within the timeout, is presumed hung.
        for (i, slot) in slots.iter_mut().enumerate() {
            if slot.child.is_none() || slot.dead {
                continue;
            }
            let overdue = match slot.busy {
                Some((_, _, deadline)) => now >= deadline,
                None => !slot.ready && now >= slot.spawned_at + cfg.timeout,
            };
            if overdue {
                if cfg.progress {
                    eprintln!("campaign: worker {i} timed out; reaping");
                }
                events.emit(
                    "reap",
                    vec![f_int("worker", i as u64), f_str("reason", "timeout")],
                );
                kill_slot(slot);
                requeue(
                    slot,
                    &mut pending,
                    &mut stats,
                    cfg,
                    &mut writer,
                    &mut done,
                    &mut events,
                )?;
            }
        }

        // Respawn dead slots (bounded, backed off) while work remains.
        if !pending.is_empty() || slots.iter().any(|s| s.busy.is_some()) {
            for (i, slot) in slots.iter_mut().enumerate() {
                if slot.child.is_some() || slot.dead || now < slot.next_spawn {
                    continue;
                }
                if slot.respawns >= cfg.max_respawns {
                    slot.dead = true;
                    continue;
                }
                match spawn_worker(cfg, i, slot, &tx) {
                    Ok(()) => {
                        events.emit(
                            "spawn",
                            vec![f_int("worker", i as u64), f_int("gen", slot.gen)],
                        );
                        if slot.gen > 1 {
                            stats.respawns += 1;
                            events.emit(
                                "respawn",
                                vec![
                                    f_int("worker", i as u64),
                                    f_int("respawns", u64::from(slot.respawns)),
                                ],
                            );
                        }
                    }
                    Err(e) => {
                        if cfg.progress {
                            eprintln!("campaign: spawn failed for worker {i}: {e}");
                        }
                        slot.respawns += 1;
                        let exp = slot.respawns.min(5);
                        slot.next_spawn =
                            now + (cfg.backoff * 2u32.pow(exp)).min(Duration::from_secs(1));
                    }
                }
            }
        }

        if slots.iter().all(|s| s.dead) && !pending.is_empty() {
            break Err(CampaignError::WorkersExhausted {
                pending: pending.len(),
            });
        }

        // Dispatch to ready, idle workers.
        for (i, slot) in slots.iter_mut().enumerate() {
            if pending.is_empty() {
                break;
            }
            if !slot.ready || slot.busy.is_some() || slot.child.is_none() {
                continue;
            }
            let (cell, attempt) = pending.pop_front().expect("nonempty");
            let job = CoordMsg::Job {
                cell,
                attempt,
                spec: spec.cells[cell as usize].clone(),
            };
            let ok = slot
                .stdin
                .as_mut()
                .map(|w| write_frame(w, &job.encode()).is_ok())
                .unwrap_or(false);
            if ok {
                slot.busy = Some((cell, attempt, Instant::now() + cfg.timeout));
                events.emit(
                    "dispatch",
                    vec![
                        f_int("worker", i as u64),
                        f_int("cell", u64::from(cell)),
                        f_int("attempt", u64::from(attempt)),
                    ],
                );
            } else {
                // The pipe is dead: requeue the same attempt (the worker
                // never saw it) and let the reaper/respawner handle the
                // corpse.
                pending.push_front((cell, attempt));
                events.emit(
                    "reap",
                    vec![f_int("worker", i as u64), f_str("reason", "pipe-closed")],
                );
                kill_slot(slot);
            }
        }

        // Collect events.
        match rx.recv_timeout(Duration::from_millis(25)) {
            Ok((i, gen, event)) => {
                let slot = &mut slots[i];
                if gen != slot.gen || slot.child.is_none() {
                    // A killed incarnation's reader thread draining.
                } else {
                    match event {
                        SlotEvent::Msg(WorkerMsg::Hello { proto }) => {
                            if proto != PROTO_VERSION {
                                break Err(CampaignError::Protocol(format!(
                                    "worker {i} speaks protocol {proto}, \
                                     coordinator speaks {PROTO_VERSION}"
                                )));
                            }
                            slot.ready = true;
                            events.emit(
                                "hello",
                                vec![
                                    f_int("worker", i as u64),
                                    f_num(
                                        "latency_ms",
                                        slot.spawned_at.elapsed().as_secs_f64() * 1e3,
                                    ),
                                ],
                            );
                        }
                        SlotEvent::Msg(WorkerMsg::Done { cell, outcome }) => {
                            match slot.busy {
                                Some((busy_cell, attempt, _)) if busy_cell == cell => {
                                    slot.busy = None;
                                    let ok = outcome.failure_key().is_none();
                                    let fsync =
                                        record(cell, outcome, &mut writer, &mut done, &mut stats)?;
                                    events.emit(
                                        "done",
                                        vec![
                                            f_int("worker", i as u64),
                                            f_int("cell", u64::from(cell)),
                                            f_int("attempt", u64::from(attempt)),
                                            (
                                                "ok".to_string(),
                                                watchdog_telemetry::JsonValue::Bool(ok),
                                            ),
                                            f_num("fsync_ms", fsync.as_secs_f64() * 1e3),
                                        ],
                                    );
                                }
                                _ => {
                                    // A result for a cell this worker
                                    // doesn't hold: protocol confusion.
                                    // Kill it; its real cell is retried.
                                    if cfg.progress {
                                        eprintln!(
                                            "campaign: worker {i} answered for cell {cell} \
                                             it doesn't hold; reaping"
                                        );
                                    }
                                    events.emit(
                                        "reap",
                                        vec![
                                            f_int("worker", i as u64),
                                            f_str("reason", "misattributed-done"),
                                        ],
                                    );
                                    kill_slot(slot);
                                    requeue(
                                        slot,
                                        &mut pending,
                                        &mut stats,
                                        cfg,
                                        &mut writer,
                                        &mut done,
                                        &mut events,
                                    )?;
                                }
                            }
                        }
                        SlotEvent::Bad(why) => {
                            if cfg.progress {
                                eprintln!("campaign: worker {i}: {why}; reaping");
                            }
                            events.emit(
                                "reap",
                                vec![f_int("worker", i as u64), f_str("reason", "bad-frame")],
                            );
                            kill_slot(slot);
                            requeue(
                                slot,
                                &mut pending,
                                &mut stats,
                                cfg,
                                &mut writer,
                                &mut done,
                                &mut events,
                            )?;
                        }
                        SlotEvent::Eof => {
                            events.emit(
                                "reap",
                                vec![f_int("worker", i as u64), f_str("reason", "eof")],
                            );
                            kill_slot(slot);
                            requeue(
                                slot,
                                &mut pending,
                                &mut stats,
                                cfg,
                                &mut writer,
                                &mut done,
                                &mut events,
                            )?;
                        }
                    }
                }
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {}
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                // All reader threads gone; loop state machine handles
                // respawn or exhaustion on the next pass.
            }
        }

        if (cfg.progress || events.enabled()) && last_progress.elapsed() >= progress_every {
            last_progress = Instant::now();
            let alive = slots.iter().filter(|s| s.child.is_some()).count();
            let rate = f64::from(stats.completed) / start.elapsed().as_secs_f64().max(1e-9);
            events.emit(
                "progress",
                vec![
                    f_int("done", done.len() as u64),
                    f_int("cells", u64::from(cells)),
                    f_num("cells_per_s", rate),
                    f_int("workers_alive", alive as u64),
                    f_int("retries", u64::from(stats.retries)),
                ],
            );
            if cfg.progress {
                progress_line(&stats, done.len() as u32, &slots, start);
            }
        }
    };

    // Shutdown: ask nicely, then close stdin, then wait briefly, then
    // kill.
    for slot in slots.iter_mut() {
        if let Some(w) = slot.stdin.as_mut() {
            let _ = write_frame(w, &CoordMsg::Shutdown.encode());
        }
        slot.stdin = None; // close the pipe
    }
    let deadline = Instant::now() + Duration::from_secs(1);
    for slot in slots.iter_mut() {
        if let Some(child) = slot.child.as_mut() {
            loop {
                match child.try_wait() {
                    Ok(Some(_)) => break,
                    Ok(None) if Instant::now() < deadline => {
                        std::thread::sleep(Duration::from_millis(10))
                    }
                    _ => {
                        let _ = child.kill();
                        let _ = child.wait();
                        break;
                    }
                }
            }
        }
        slot.child = None;
    }

    result?;

    // Completed: compact to canonical order so the file is
    // byte-identical to a serial run's ledger.
    finish_stats(&mut stats, &done);
    writer.finalize_canonical(&done)?;
    stats.elapsed_ms = u64::try_from(start.elapsed().as_millis()).unwrap_or(u64::MAX);
    events.emit(
        "campaign_end",
        vec![
            f_int("completed", u64::from(stats.completed)),
            f_int("retries", u64::from(stats.retries)),
            f_int("respawns", u64::from(stats.respawns)),
            f_int("failures", u64::from(stats.failures)),
            f_int("unique_failures", u64::from(stats.unique_failures)),
            f_int("elapsed_ms", stats.elapsed_ms),
            f_num(
                "cells_per_s",
                f64::from(stats.completed) / (stats.elapsed_ms as f64 / 1e3).max(1e-9),
            ),
        ],
    );
    if cfg.progress {
        eprintln!(
            "campaign: done — {}/{} cells ({} resumed), {} retries, {} respawns, {} failure(s) \
             ({} unique), {} ms",
            done.len(),
            stats.cells,
            stats.resumed,
            stats.retries,
            stats.respawns,
            stats.failures,
            stats.unique_failures,
            stats.elapsed_ms
        );
    }
    Ok(stats)
}

/// Spawns one worker child into `slot` and starts its reader thread.
fn spawn_worker(
    cfg: &CampaignConfig,
    index: usize,
    slot: &mut Slot,
    tx: &mpsc::Sender<(usize, u64, SlotEvent)>,
) -> io::Result<()> {
    let mut cmd = Command::new(&cfg.worker_exe);
    cmd.arg("worker")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit());
    match &cfg.fault {
        Some(plan) => {
            cmd.env(FAULT_ENV, plan);
        }
        None => {
            cmd.env_remove(FAULT_ENV);
        }
    }
    // When the coordinator records a flight log, workers report their
    // own shutdown summary (cells, execute time) on stderr alongside it.
    if cfg.events.is_some() {
        cmd.env(WORKER_TELEMETRY_ENV, "1");
    } else {
        cmd.env_remove(WORKER_TELEMETRY_ENV);
    }
    let mut child = cmd.spawn()?;
    let stdin = child.stdin.take().expect("piped stdin");
    let mut stdout = child.stdout.take().expect("piped stdout");
    slot.gen += 1;
    slot.respawns += 1;
    let gen = slot.gen;
    let tx = tx.clone();
    std::thread::spawn(move || loop {
        match read_frame(&mut stdout) {
            Ok(payload) => match WorkerMsg::decode(&payload) {
                Ok(msg) => {
                    if tx.send((index, gen, SlotEvent::Msg(msg))).is_err() {
                        return;
                    }
                }
                Err(why) => {
                    let _ = tx.send((index, gen, SlotEvent::Bad(format!("bad message: {why}"))));
                    return;
                }
            },
            Err(FrameError::Eof) => {
                let _ = tx.send((index, gen, SlotEvent::Eof));
                return;
            }
            Err(e) => {
                let _ = tx.send((index, gen, SlotEvent::Bad(e.to_string())));
                return;
            }
        }
    });
    slot.child = Some(child);
    slot.stdin = Some(stdin);
    slot.ready = false;
    slot.busy = None;
    slot.spawned_at = Instant::now();
    Ok(())
}

/// Kills a slot's child (if any) and resets it for respawn with backoff.
fn kill_slot(slot: &mut Slot) {
    if let Some(mut child) = slot.child.take() {
        let _ = child.kill();
        let _ = child.wait();
    }
    slot.stdin = None;
    slot.ready = false;
    slot.gen += 1; // orphan any in-flight reader events
    let exp = slot.respawns.min(5);
    slot.next_spawn =
        Instant::now() + (Duration::from_millis(50) * 2u32.pow(exp)).min(Duration::from_secs(1));
}

/// Returns a reaped slot's outstanding cell to the queue with one more
/// attempt, or records it as retries-exhausted when the budget is spent.
fn requeue(
    slot: &mut Slot,
    pending: &mut VecDeque<(u32, u32)>,
    stats: &mut CampaignStats,
    cfg: &CampaignConfig,
    writer: &mut LedgerWriter,
    done: &mut BTreeMap<u32, CellOutcome>,
    events: &mut EventLog,
) -> Result<(), CampaignError> {
    if let Some((cell, attempt, _)) = slot.busy.take() {
        if attempt < cfg.max_retries {
            stats.retries += 1;
            pending.push_back((cell, attempt + 1));
            events.emit(
                "retry",
                vec![
                    f_int("cell", u64::from(cell)),
                    f_int("attempt", u64::from(attempt + 1)),
                ],
            );
        } else {
            let outcome = CellOutcome::Fail {
                kind: KIND_RETRIES_EXHAUSTED,
                pc: 0,
                detail: format!("retries exhausted after {} attempts", attempt + 1),
            };
            record(cell, outcome, writer, done, stats)?;
            events.emit(
                "retries_exhausted",
                vec![
                    f_int("cell", u64::from(cell)),
                    f_int("attempts", u64::from(attempt + 1)),
                ],
            );
        }
    }
    Ok(())
}

/// Makes one cell's outcome durable and counted. Returns how long the
/// fsync'd ledger append took (the `fsync_ms` field of `done` events).
fn record(
    cell: u32,
    outcome: CellOutcome,
    writer: &mut LedgerWriter,
    done: &mut BTreeMap<u32, CellOutcome>,
    stats: &mut CampaignStats,
) -> Result<Duration, CampaignError> {
    if done.contains_key(&cell) {
        return Ok(Duration::ZERO); // late duplicate from a raced retry
    }
    let t0 = Instant::now();
    writer.append(&CellRecord {
        cell,
        outcome: outcome.clone(),
    })?;
    let fsync = t0.elapsed();
    done.insert(cell, outcome);
    stats.completed += 1;
    Ok(fsync)
}

/// Fills the failure counters from the final outcome map.
fn finish_stats(stats: &mut CampaignStats, done: &BTreeMap<u32, CellOutcome>) {
    let mut unique = HashSet::new();
    let mut failures = 0u32;
    for outcome in done.values() {
        if let Some(key) = outcome.failure_key() {
            failures += 1;
            unique.insert(key);
        }
    }
    stats.failures = failures;
    stats.unique_failures = u32::try_from(unique.len()).unwrap_or(u32::MAX);
}

/// Emits the periodic progress line.
fn progress_line(stats: &CampaignStats, done: u32, slots: &[Slot], start: Instant) {
    let alive = slots.iter().filter(|s| s.child.is_some()).count();
    let secs = start.elapsed().as_secs_f64().max(1e-9);
    let rate = f64::from(stats.completed) / secs;
    eprintln!(
        "campaign: {done}/{} cells, {rate:.1} cells/s, {alive}/{} workers alive, {} retries, \
         {} deduped failure(s)",
        stats.cells,
        slots.len(),
        stats.retries,
        stats.unique_failures,
    );
    let _ = io::stderr().flush();
}

/// Executes every cell in order, in-process — the serial reference a
/// campaign's canonical ledger is compared against.
pub fn run_campaign_serial(spec: &CampaignSpec) -> Vec<CellRecord> {
    spec.cells
        .iter()
        .enumerate()
        .map(|(i, cell)| CellRecord {
            cell: u32::try_from(i).expect("cell count fits u32"),
            outcome: execute_cell(cell),
        })
        .collect()
}

/// The exact bytes a completed campaign's ledger must contain: header
/// plus one record per cell in cell-id order, computed serially
/// in-process.
pub fn serial_ledger_bytes(spec: &CampaignSpec) -> Vec<u8> {
    let header = LedgerHeader {
        version: LEDGER_VERSION,
        spec_hash: spec.spec_hash(),
        probe_fingerprint: spec.probe_fingerprint(),
        cells: u32::try_from(spec.cells.len()).expect("cell count fits u32"),
    };
    let records = run_campaign_serial(spec);
    let mut done = BTreeMap::new();
    for r in records {
        done.insert(r.cell, r.outcome);
    }
    canonical_bytes(&header, &done)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_bytes_are_deterministic_and_parse_back() {
        let spec = CampaignSpec::fuzz(0, 6);
        let a = serial_ledger_bytes(&spec);
        let b = serial_ledger_bytes(&spec);
        assert_eq!(a, b);
        let parsed = crate::ledger::parse_ledger(&a).unwrap();
        assert_eq!(parsed.records.len(), 6);
        assert!(!parsed.torn);
        assert_eq!(parsed.header.spec_hash, spec.spec_hash());
    }

    #[test]
    fn config_defaults_are_sane() {
        let cfg = CampaignConfig::new("/bin/true");
        assert_eq!(cfg.jobs, 2);
        assert_eq!(cfg.max_retries, 2);
        assert!(cfg.timeout >= Duration::from_secs(1));
    }
}

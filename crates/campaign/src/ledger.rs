//! The append-only, crash-safe results ledger.
//!
//! Layout (varints from the trace wire module unless noted):
//!
//! ```text
//! magic "WDLG" (4 raw bytes)
//! version | spec hash | probe fingerprint | cell count
//! then, per completed cell, in completion order:
//!   marker 0xA5 (1 raw byte)
//!   payload length | payload | FNV-1a checksum of payload
//!   payload = cell id | outcome (see CellOutcome::put)
//! ```
//!
//! Records are appended with one `fdatasync` each, so a kill at any
//! instant leaves at worst one **torn final record** — which the parser
//! detects (marker, length, checksum) and drops rather than mis-parses.
//! The header pins the campaign: a ledger whose spec hash, probe
//! fingerprint or cell count differs from the resuming campaign is
//! refused outright ([`LedgerError::Mismatch`]) instead of silently
//! merged.
//!
//! Parsing is **prefix recovery**, not validation: everything up to the
//! first structurally bad byte is kept, the rest (the torn tail) is
//! reported via [`ParsedLedger::valid_len`] so resume can truncate it.
//! Records from interleaved writers (two coordinators racing one file
//! with `O_APPEND` record granularity) and duplicate cells (a crash
//! between append and schedule bookkeeping) both parse; duplicates
//! resolve **first-write-wins** — the earlier record is the one that was
//! durable first.

use std::collections::BTreeMap;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use watchdog_trace::wire::{get_uvarint, put_uvarint};

use crate::cell::CellOutcome;
use crate::fnv64;

/// File magic: first four bytes of every ledger.
pub const LEDGER_MAGIC: [u8; 4] = *b"WDLG";

/// Current ledger format version; other versions are refused.
pub const LEDGER_VERSION: u64 = 1;

/// Marker byte opening every record (resync guard: a record can never
/// start with trailing garbage from a torn write).
pub const RECORD_MARKER: u8 = 0xa5;

/// The ledger header: everything needed to refuse a stale or foreign
/// ledger before reading a single record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LedgerHeader {
    /// Format version ([`LEDGER_VERSION`]).
    pub version: u64,
    /// [`CampaignSpec::spec_hash`](crate::CampaignSpec::spec_hash) of the
    /// writing campaign.
    pub spec_hash: u64,
    /// [`CampaignSpec::probe_fingerprint`](crate::CampaignSpec::probe_fingerprint)
    /// of the writing campaign.
    pub probe_fingerprint: u64,
    /// Total cells in the campaign (not: records written so far).
    pub cells: u32,
}

impl LedgerHeader {
    /// Serializes the header.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(32);
        buf.extend_from_slice(&LEDGER_MAGIC);
        put_uvarint(&mut buf, self.version);
        put_uvarint(&mut buf, self.spec_hash);
        put_uvarint(&mut buf, self.probe_fingerprint);
        put_uvarint(&mut buf, u64::from(self.cells));
        buf
    }
}

/// One completed cell in the ledger.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellRecord {
    /// Cell id (index into the campaign's cell list).
    pub cell: u32,
    /// The cell's deterministic outcome.
    pub outcome: CellOutcome,
}

impl CellRecord {
    /// Serializes the record (marker, length, payload, checksum).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut payload = Vec::with_capacity(32);
        put_uvarint(&mut payload, u64::from(self.cell));
        self.outcome.put(&mut payload);
        let mut buf = Vec::with_capacity(payload.len() + 16);
        buf.push(RECORD_MARKER);
        put_uvarint(&mut buf, payload.len() as u64);
        buf.extend_from_slice(&payload);
        put_uvarint(&mut buf, fnv64(&payload));
        buf
    }
}

/// Errors reading or resuming a ledger.
#[derive(Debug)]
pub enum LedgerError {
    /// The file exists but is not a ledger (bad magic or a header torn
    /// before the first record could have been written).
    NotALedger,
    /// The ledger was written by an unsupported format version.
    BadVersion(u64),
    /// The ledger belongs to a different campaign — the named header
    /// field disagrees with the resuming campaign.
    Mismatch {
        /// Which header field disagreed.
        field: &'static str,
        /// The value recorded in the ledger.
        ledger: u64,
        /// The resuming campaign's value.
        campaign: u64,
    },
    /// An underlying I/O error.
    Io(io::Error),
}

impl fmt::Display for LedgerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LedgerError::NotALedger => write!(f, "not a watchdog campaign ledger"),
            LedgerError::BadVersion(v) => {
                write!(
                    f,
                    "unsupported ledger version {v} (expected {LEDGER_VERSION})"
                )
            }
            LedgerError::Mismatch {
                field,
                ledger,
                campaign,
            } => write!(
                f,
                "stale ledger refused: {field} mismatch (ledger {ledger:#x}, campaign \
                 {campaign:#x}) — the ledger was written by a different campaign or build; \
                 delete it or point --ledger elsewhere"
            ),
            LedgerError::Io(e) => write!(f, "ledger i/o error: {e}"),
        }
    }
}

impl std::error::Error for LedgerError {}

impl From<io::Error> for LedgerError {
    fn from(e: io::Error) -> Self {
        LedgerError::Io(e)
    }
}

/// A parsed ledger: the header, every structurally valid record in file
/// order, and where the valid prefix ends.
#[derive(Debug, Clone)]
pub struct ParsedLedger {
    /// The header.
    pub header: LedgerHeader,
    /// Records in file order (duplicates included; see [`dedup`]).
    pub records: Vec<CellRecord>,
    /// Byte length of the valid prefix (header + whole records). Equal
    /// to the input length iff nothing was torn.
    pub valid_len: u64,
    /// Whether bytes after `valid_len` were dropped as a torn tail.
    pub torn: bool,
}

/// Parses ledger bytes, recovering the valid prefix.
///
/// # Errors
///
/// [`LedgerError::NotALedger`] when the magic is wrong or the header is
/// torn; [`LedgerError::BadVersion`] for foreign versions. Torn or
/// corrupt **records** are not errors — parsing stops there and reports
/// the tail via [`ParsedLedger::torn`].
pub fn parse_ledger(bytes: &[u8]) -> Result<ParsedLedger, LedgerError> {
    let mut pos = 0usize;
    if bytes.get(..4) != Some(&LEDGER_MAGIC[..]) {
        return Err(LedgerError::NotALedger);
    }
    pos += 4;
    let version = get_uvarint(bytes, &mut pos).map_err(|_| LedgerError::NotALedger)?;
    if version != LEDGER_VERSION {
        return Err(LedgerError::BadVersion(version));
    }
    let spec_hash = get_uvarint(bytes, &mut pos).map_err(|_| LedgerError::NotALedger)?;
    let probe = get_uvarint(bytes, &mut pos).map_err(|_| LedgerError::NotALedger)?;
    let cells = get_uvarint(bytes, &mut pos).map_err(|_| LedgerError::NotALedger)?;
    let cells = u32::try_from(cells).map_err(|_| LedgerError::NotALedger)?;
    let header = LedgerHeader {
        version,
        spec_hash,
        probe_fingerprint: probe,
        cells,
    };

    let mut records = Vec::new();
    let mut valid_len = pos;
    while pos < bytes.len() {
        let Some(rec) = parse_record(bytes, &mut pos) else {
            break;
        };
        records.push(rec);
        valid_len = pos;
    }
    Ok(ParsedLedger {
        header,
        records,
        valid_len: valid_len as u64,
        torn: valid_len != bytes.len(),
    })
}

/// Parses one record at `*pos`; `None` (without advancing past valid
/// data) when the bytes there are torn or corrupt.
fn parse_record(bytes: &[u8], pos: &mut usize) -> Option<CellRecord> {
    let mut p = *pos;
    if *bytes.get(p)? != RECORD_MARKER {
        return None;
    }
    p += 1;
    let len = get_uvarint(bytes, &mut p).ok()?;
    let len = usize::try_from(len).ok()?;
    let end = p.checked_add(len)?;
    let payload = bytes.get(p..end)?;
    p = end;
    let sum = get_uvarint(bytes, &mut p).ok()?;
    if sum != fnv64(payload) {
        return None;
    }
    let mut q = 0usize;
    let cell = get_uvarint(payload, &mut q).ok()?;
    let cell = u32::try_from(cell).ok()?;
    let outcome = CellOutcome::get(payload, &mut q).ok()?;
    if q != payload.len() {
        return None;
    }
    *pos = p;
    Some(CellRecord { cell, outcome })
}

/// Collapses records (file order) into a per-cell map, first-write-wins.
pub fn dedup(records: &[CellRecord]) -> BTreeMap<u32, CellOutcome> {
    let mut map = BTreeMap::new();
    for r in records {
        map.entry(r.cell).or_insert_with(|| r.outcome.clone());
    }
    map
}

/// The canonical serialization: header followed by one record per cell
/// in **cell-id order**. A completed campaign compacts its ledger to this
/// form, which is byte-identical to the ledger of an undisturbed serial
/// run of the same campaign.
pub fn canonical_bytes(header: &LedgerHeader, done: &BTreeMap<u32, CellOutcome>) -> Vec<u8> {
    let mut buf = header.to_bytes();
    for (&cell, outcome) in done {
        buf.extend_from_slice(
            &CellRecord {
                cell,
                outcome: outcome.clone(),
            }
            .to_bytes(),
        );
    }
    buf
}

/// Reads a ledger file and returns its canonical bytes (parse, drop the
/// torn tail, dedup, sort by cell id) — the form the fault and resume
/// suites compare against a serial run.
///
/// # Errors
///
/// As [`parse_ledger`], plus I/O errors reading the file.
pub fn read_canonical(path: &Path) -> Result<Vec<u8>, LedgerError> {
    let parsed = parse_ledger(&std::fs::read(path)?)?;
    Ok(canonical_bytes(&parsed.header, &dedup(&parsed.records)))
}

/// The append side: an open ledger file with one durable record per
/// completed cell.
#[derive(Debug)]
pub struct LedgerWriter {
    file: File,
    path: PathBuf,
    header: LedgerHeader,
}

impl LedgerWriter {
    /// Creates (or truncates) a fresh ledger with `header`.
    ///
    /// # Errors
    ///
    /// I/O errors creating or syncing the file.
    pub fn create(path: &Path, header: LedgerHeader) -> Result<LedgerWriter, LedgerError> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        file.write_all(&header.to_bytes())?;
        file.sync_data()?;
        Ok(LedgerWriter {
            file,
            path: path.to_path_buf(),
            header,
        })
    }

    /// Opens an existing ledger for resumption: validates the header
    /// against `expect`, truncates any torn tail, and returns the writer
    /// plus the already-completed cells. A missing or empty file starts
    /// fresh (a campaign killed before its first write left nothing to
    /// resume).
    ///
    /// # Errors
    ///
    /// [`LedgerError::Mismatch`] when any header field disagrees with
    /// `expect`; parse and I/O errors as [`parse_ledger`].
    pub fn resume(
        path: &Path,
        expect: LedgerHeader,
    ) -> Result<(LedgerWriter, BTreeMap<u32, CellOutcome>), LedgerError> {
        let bytes = match std::fs::read(path) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e.into()),
        };
        if bytes.is_empty() {
            return Ok((LedgerWriter::create(path, expect)?, BTreeMap::new()));
        }
        let parsed = parse_ledger(&bytes)?;
        let h = parsed.header;
        let mismatch = [
            ("spec hash", h.spec_hash, expect.spec_hash),
            (
                "program fingerprint",
                h.probe_fingerprint,
                expect.probe_fingerprint,
            ),
            ("cell count", u64::from(h.cells), u64::from(expect.cells)),
        ]
        .into_iter()
        .find(|(_, a, b)| a != b);
        if let Some((field, ledger, campaign)) = mismatch {
            return Err(LedgerError::Mismatch {
                field,
                ledger,
                campaign,
            });
        }
        let mut file = OpenOptions::new().read(true).write(true).open(path)?;
        file.set_len(parsed.valid_len)?;
        file.seek(SeekFrom::End(0))?;
        file.sync_data()?;
        let done = dedup(&parsed.records);
        Ok((
            LedgerWriter {
                file,
                path: path.to_path_buf(),
                header: h,
            },
            done,
        ))
    }

    /// Appends one record and syncs it to disk before returning — after
    /// this returns, a kill at any instant cannot lose the cell.
    ///
    /// # Errors
    ///
    /// I/O errors writing or syncing.
    pub fn append(&mut self, record: &CellRecord) -> Result<(), LedgerError> {
        self.file.write_all(&record.to_bytes())?;
        self.file.sync_data()?;
        Ok(())
    }

    /// Compacts the completed ledger into canonical cell-id order via an
    /// atomic tmp-file + rename, so the final on-disk bytes equal a
    /// serial run's ledger exactly. Crash-safe: a kill mid-compaction
    /// leaves either the old (complete, unordered) or the new
    /// (canonical) file.
    ///
    /// # Errors
    ///
    /// I/O errors writing, syncing or renaming.
    pub fn finalize_canonical(self, done: &BTreeMap<u32, CellOutcome>) -> Result<(), LedgerError> {
        let bytes = canonical_bytes(&self.header, done);
        let tmp = self.path.with_extension("wdlg.tmp");
        let mut f = File::create(&tmp)?;
        f.write_all(&bytes)?;
        f.sync_all()?;
        drop(f);
        drop(self.file);
        std::fs::rename(&tmp, &self.path)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn header(cells: u32) -> LedgerHeader {
        LedgerHeader {
            version: LEDGER_VERSION,
            spec_hash: 0x1234_5678_9abc_def0,
            probe_fingerprint: 0x0fed_cba9_8765_4321,
            cells,
        }
    }

    fn rec(cell: u32, digest: u64) -> CellRecord {
        CellRecord {
            cell,
            outcome: CellOutcome::Pass {
                insts: u64::from(cell) * 1000 + 7,
                digest,
            },
        }
    }

    fn serialize(h: &LedgerHeader, recs: &[CellRecord]) -> Vec<u8> {
        let mut buf = h.to_bytes();
        for r in recs {
            buf.extend_from_slice(&r.to_bytes());
        }
        buf
    }

    #[test]
    fn round_trips_and_reports_no_tear() {
        let recs: Vec<CellRecord> = (0..10).map(|i| rec(i, u64::from(i) ^ 0xabcd)).collect();
        let bytes = serialize(&header(10), &recs);
        let p = parse_ledger(&bytes).unwrap();
        assert_eq!(p.records, recs);
        assert!(!p.torn);
        assert_eq!(p.valid_len, bytes.len() as u64);
    }

    #[test]
    fn header_tears_are_refused_not_recovered() {
        let bytes = serialize(&header(3), &[rec(0, 1)]);
        let header_len = header(3).to_bytes().len();
        for cut in 0..header_len {
            assert!(
                matches!(parse_ledger(&bytes[..cut]), Err(LedgerError::NotALedger)),
                "header cut at {cut}"
            );
        }
        assert!(matches!(
            parse_ledger(b"WDTR----"),
            Err(LedgerError::NotALedger)
        ));
        let mut v2 = header(3).to_bytes();
        v2[4] = 9; // single-byte version varint
        assert!(matches!(parse_ledger(&v2), Err(LedgerError::BadVersion(9))));
    }

    #[test]
    fn every_tail_truncation_drops_exactly_the_torn_record() {
        let recs: Vec<CellRecord> = (0..6).map(|i| rec(i, 42 + u64::from(i))).collect();
        let h = header(6);
        let header_len = h.to_bytes().len();
        let bytes = serialize(&h, &recs);
        // Record boundaries, for checking the recovered prefix exactly.
        let mut boundaries = vec![header_len];
        for r in &recs {
            boundaries.push(boundaries.last().unwrap() + r.to_bytes().len());
        }
        for cut in header_len..bytes.len() {
            let p = parse_ledger(&bytes[..cut]).unwrap();
            let whole = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
            assert_eq!(p.records, recs[..whole], "cut at {cut}");
            assert_eq!(p.valid_len as usize, boundaries[whole], "cut at {cut}");
            assert_eq!(p.torn, cut != boundaries[whole], "cut at {cut}");
        }
    }

    #[test]
    fn corrupt_mid_record_bytes_stop_parsing_at_the_last_good_record() {
        let recs: Vec<CellRecord> = (0..4).map(|i| rec(i, 9 + u64::from(i))).collect();
        let h = header(4);
        let mut bytes = serialize(&h, &recs[..3]);
        // Flip a byte inside the third record's payload.
        let third_start = h.to_bytes().len() + recs[0].to_bytes().len() + recs[1].to_bytes().len();
        bytes[third_start + 3] ^= 0x10;
        bytes.extend_from_slice(&recs[3].to_bytes());
        let p = parse_ledger(&bytes).unwrap();
        // The corrupt record and everything after it are the torn tail:
        // no resync, no mis-parse.
        assert_eq!(p.records, recs[..2]);
        assert!(p.torn);
    }

    #[test]
    fn duplicates_resolve_first_write_wins() {
        let first = rec(3, 111);
        let later = rec(3, 222);
        let bytes = serialize(&header(5), &[rec(0, 5), first.clone(), later, rec(4, 9)]);
        let p = parse_ledger(&bytes).unwrap();
        let done = dedup(&p.records);
        assert_eq!(done.len(), 3);
        assert_eq!(done[&3], first.outcome);
    }

    #[test]
    fn interleaved_writer_records_parse_and_dedup() {
        // Two writers' record streams interleaved at record granularity
        // (O_APPEND): structurally valid, resolved first-write-wins.
        let a: Vec<CellRecord> = (0..4).map(|i| rec(i, 100 + u64::from(i))).collect();
        let b: Vec<CellRecord> = (0..4).map(|i| rec(i, 200 + u64::from(i))).collect();
        let mut bytes = header(4).to_bytes();
        for i in 0..4 {
            bytes.extend_from_slice(&a[i].to_bytes());
            bytes.extend_from_slice(&b[i].to_bytes());
        }
        let p = parse_ledger(&bytes).unwrap();
        assert_eq!(p.records.len(), 8);
        assert!(!p.torn);
        let done = dedup(&p.records);
        assert_eq!(done.len(), 4);
        for i in 0..4u32 {
            assert_eq!(
                done[&i], a[i as usize].outcome,
                "writer A was durable first"
            );
        }
    }

    #[test]
    fn canonical_bytes_sort_by_cell_id() {
        let recs = [rec(2, 22), rec(0, 0), rec(1, 11)];
        let h = header(3);
        let bytes = serialize(&h, &recs);
        let p = parse_ledger(&bytes).unwrap();
        let canon = canonical_bytes(&p.header, &dedup(&p.records));
        let sorted = serialize(&h, &[rec(0, 0), rec(1, 11), rec(2, 22)]);
        assert_eq!(canon, sorted);
    }

    #[test]
    fn writer_create_append_resume_cycle() {
        let dir = std::env::temp_dir().join(format!("wdlg-unit-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cycle.wdlg");
        let h = header(4);
        let mut w = LedgerWriter::create(&path, h).unwrap();
        w.append(&rec(1, 10)).unwrap();
        w.append(&rec(0, 5)).unwrap();
        drop(w);
        // Simulate a torn tail: append garbage.
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&[RECORD_MARKER, 200]).unwrap();
        }
        let (mut w, done) = LedgerWriter::resume(&path, h).unwrap();
        assert_eq!(done.len(), 2, "torn tail dropped, good records kept");
        w.append(&rec(2, 20)).unwrap();
        w.append(&rec(3, 30)).unwrap();
        let mut all = done;
        all.insert(2, rec(2, 20).outcome);
        all.insert(3, rec(3, 30).outcome);
        w.finalize_canonical(&all).unwrap();
        let file_bytes = std::fs::read(&path).unwrap();
        let serial = serialize(&h, &[rec(0, 5), rec(1, 10), rec(2, 20), rec(3, 30)]);
        assert_eq!(file_bytes, serial, "finalized file is canonical");
        // Resume against a different campaign is refused.
        let mut other = h;
        other.probe_fingerprint ^= 1;
        match LedgerWriter::resume(&path, other) {
            Err(LedgerError::Mismatch { field, .. }) => {
                assert_eq!(field, "program fingerprint");
            }
            other => panic!("expected fingerprint mismatch, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn errors_display_distinctly() {
        let errors = [
            LedgerError::NotALedger,
            LedgerError::BadVersion(9),
            LedgerError::Mismatch {
                field: "spec hash",
                ledger: 1,
                campaign: 2,
            },
            LedgerError::Io(io::Error::other("x")),
        ];
        let mut seen = std::collections::HashSet::new();
        for e in errors {
            assert!(seen.insert(e.to_string()));
        }
    }
}

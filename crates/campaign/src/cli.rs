//! The `watchdog-cli campaign` front end: flag parsing with exhaustive
//! error listings (the `scale_from_args` discipline), the help text, and
//! the exit-code policy.

use std::path::PathBuf;
use std::time::Duration;

use watchdog_workloads::Scale;

use crate::cell::CampaignSpec;
use crate::coordinator::{run_campaign, CampaignConfig};
use crate::fault::FaultPlan;

/// Help text for `watchdog-cli campaign --help`.
pub const CAMPAIGN_HELP: &str = "\
watchdog-cli campaign — crash-isolated multi-process simulation campaign

usage: watchdog-cli campaign [flags]

The coordinator spawns worker processes (re-exec'd `watchdog-cli worker`),
feeds them fuzz seeds or (benchmark x mode) cells, and appends every
result to a crash-safe ledger. Workers that panic, exit, hang or emit
corrupt frames are killed and respawned; their cells are retried a
bounded number of times. The completed ledger is byte-identical to a
serial single-process run's.

flags:
  --seeds N          fuzz campaign over N seeds (default 1000)
  --seed-start N     first seed (default 0)
  --suite            run the (benchmark x mode) suite grid instead of fuzz
  --scale S          suite input scale: test, small, ref (default small)
  --jobs N           worker processes (default WATCHDOG_JOBS, then cores)
  --ledger PATH      ledger file (default campaign.wdlg)
  --resume           replay the ledger; run only the missing cells
  --timeout-secs N   per-cell heartbeat timeout (default 30)
  --retries N        retries per cell after a worker failure (default 2)
  --fault SPEC       inject worker faults, e.g. panic@3,hang@9! (testing)
  --events PATH      write a JSONL event stream (spawns, reaps, retries,
                     per-cell fsync times, throughput) to PATH
  --quiet            suppress the periodic progress line

exit status: 0 all cells passed; 1 failures recorded or campaign error;
2 bad usage.
";

/// Help text for `watchdog-cli worker --help`.
pub const WORKER_HELP: &str = "\
watchdog-cli worker — campaign worker process (internal)

Speaks length-prefixed frames over stdin/stdout; spawned by
`watchdog-cli campaign`. Not intended for interactive use. Honors the
WATCHDOG_FAULT environment variable for fault-injection testing
(kind@cell[!], kinds: panic, exit, hang, corrupt, truncate).
";

/// Parsed `campaign` subcommand flags.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignCli {
    /// Fuzz-seed count (`--seeds`).
    pub seeds: u64,
    /// First fuzz seed (`--seed-start`).
    pub seed_start: u64,
    /// Run the suite grid instead of fuzzing (`--suite`).
    pub suite: bool,
    /// Suite scale (`--scale`).
    pub scale: Scale,
    /// Worker-process count (`--jobs`, then `WATCHDOG_JOBS`, then cores).
    pub jobs: usize,
    /// Ledger path (`--ledger`).
    pub ledger: PathBuf,
    /// Resume from the ledger (`--resume`).
    pub resume: bool,
    /// Heartbeat timeout in seconds (`--timeout-secs`).
    pub timeout_secs: u64,
    /// Retry budget per cell (`--retries`).
    pub retries: u32,
    /// Fault-injection spec (`--fault`).
    pub fault: Option<String>,
    /// JSONL event-stream path (`--events`).
    pub events: Option<PathBuf>,
    /// Suppress progress output (`--quiet`).
    pub quiet: bool,
}

const VALID_FLAGS: &str = "--seeds, --seed-start, --suite, --scale, --jobs, --ledger, \
                           --resume, --timeout-secs, --retries, --fault, --events, --quiet";

/// Parses `campaign` flags from `args` (the words after the subcommand).
///
/// # Errors
///
/// A message naming the bad flag or value and listing the valid
/// alternatives.
pub fn parse_campaign_args(args: &[String]) -> Result<CampaignCli, String> {
    let mut cli = CampaignCli {
        seeds: 1000,
        seed_start: 0,
        suite: false,
        scale: Scale::Small,
        jobs: default_jobs(),
        ledger: PathBuf::from("campaign.wdlg"),
        resume: false,
        timeout_secs: 30,
        retries: 2,
        fault: None,
        events: None,
        quiet: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--suite" => cli.suite = true,
            "--resume" => cli.resume = true,
            "--quiet" => cli.quiet = true,
            "--seeds" => cli.seeds = uint_value(&mut it, "--seeds")?,
            "--seed-start" => cli.seed_start = uint_value(&mut it, "--seed-start")?,
            "--timeout-secs" => {
                cli.timeout_secs = uint_value(&mut it, "--timeout-secs")?;
                if cli.timeout_secs == 0 {
                    return Err("--timeout-secs must be positive".into());
                }
            }
            "--retries" => {
                cli.retries = u32::try_from(uint_value(&mut it, "--retries")?)
                    .map_err(|_| "--retries value is out of range".to_string())?;
            }
            "--jobs" => {
                let n = uint_value(&mut it, "--jobs")?;
                if n == 0 {
                    return Err("--jobs requires a positive integer".into());
                }
                cli.jobs =
                    usize::try_from(n).map_err(|_| "--jobs value is out of range".to_string())?;
            }
            "--ledger" => {
                cli.ledger = PathBuf::from(
                    it.next()
                        .ok_or_else(|| "--ledger requires a value (a file path)".to_string())?,
                );
            }
            "--scale" => {
                let v = it.next().ok_or_else(|| {
                    "--scale requires a value: valid values are test, small, ref \
                         (or reference)"
                        .to_string()
                })?;
                cli.scale = match v.as_str() {
                    "test" => Scale::Test,
                    "small" => Scale::Small,
                    "ref" | "reference" => Scale::Reference,
                    other => {
                        return Err(format!(
                            "unknown scale {other:?}: valid values are test, small, ref \
                             (or reference)"
                        ))
                    }
                };
            }
            "--fault" => {
                let v = it.next().ok_or_else(|| {
                    "--fault requires a value (e.g. panic@3 or exit@0,hang@9!)".to_string()
                })?;
                // Validate now so the error surfaces at the coordinator,
                // not inside every worker.
                FaultPlan::parse(v)?;
                cli.fault = Some(v.clone());
            }
            "--events" => {
                cli.events =
                    Some(PathBuf::from(it.next().ok_or_else(|| {
                        "--events requires a value (a file path)".to_string()
                    })?));
            }
            other => {
                return Err(format!(
                    "unknown campaign flag {other:?}: valid flags are {VALID_FLAGS}"
                ))
            }
        }
    }
    Ok(cli)
}

fn uint_value(it: &mut std::slice::Iter<'_, String>, flag: &str) -> Result<u64, String> {
    let v = it
        .next()
        .ok_or_else(|| format!("{flag} requires a value (an unsigned integer)"))?;
    v.parse::<u64>()
        .map_err(|_| format!("{flag} requires an unsigned integer, got {v:?}"))
}

/// `--jobs` default: `WATCHDOG_JOBS`, then available cores.
fn default_jobs() -> usize {
    if let Ok(v) = std::env::var("WATCHDOG_JOBS") {
        if let Ok(n) = v.parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Entry point for `watchdog-cli campaign`: parses `args`, runs the
/// campaign with `worker_exe` as the child binary, prints the summary,
/// and returns the process exit code (0 all-pass, 1 failures or error,
/// 2 usage).
pub fn campaign_main(args: &[String], worker_exe: PathBuf) -> i32 {
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{CAMPAIGN_HELP}");
        return 0;
    }
    let cli = match parse_campaign_args(args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            return 2;
        }
    };
    let spec = if cli.suite {
        CampaignSpec::suite(cli.scale)
    } else {
        let count = match usize::try_from(cli.seeds) {
            Ok(n) => n,
            Err(_) => {
                eprintln!("error: --seeds value is out of range");
                return 2;
            }
        };
        CampaignSpec::fuzz(cli.seed_start, count)
    };

    let mut cfg = CampaignConfig::new(worker_exe);
    cfg.jobs = cli.jobs;
    cfg.timeout = Duration::from_secs(cli.timeout_secs);
    cfg.max_retries = cli.retries;
    cfg.fault = cli.fault.clone();
    cfg.events = cli.events.clone();
    cfg.progress = !cli.quiet;

    println!(
        "campaign: {} across {} worker(s), ledger {}",
        spec.describe(),
        cfg.jobs,
        cli.ledger.display()
    );
    match run_campaign(&spec, &cfg, &cli.ledger, cli.resume) {
        Ok(stats) => {
            let secs = (stats.elapsed_ms as f64 / 1000.0).max(1e-9);
            println!("  cells     : {}", stats.cells);
            println!("  resumed   : {}", stats.resumed);
            println!("  ran       : {}", stats.completed);
            println!("  retries   : {}", stats.retries);
            println!("  respawns  : {}", stats.respawns);
            println!(
                "  failures  : {} ({} unique)",
                stats.failures, stats.unique_failures
            );
            println!(
                "  result    : {} in {:.1}s ({:.1} cells/s)",
                if stats.failures == 0 { "PASS" } else { "FAIL" },
                secs,
                f64::from(stats.completed) / secs
            );
            i32::from(stats.failures != 0)
        }
        Err(e) => {
            eprintln!("error: {e}");
            1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(words: &[&str]) -> Result<CampaignCli, String> {
        let args: Vec<String> = words.iter().map(|s| s.to_string()).collect();
        parse_campaign_args(&args)
    }

    #[test]
    fn defaults_are_the_documented_ones() {
        let cli = parse(&[]).unwrap();
        assert_eq!(cli.seeds, 1000);
        assert_eq!(cli.seed_start, 0);
        assert!(!cli.suite);
        assert_eq!(cli.scale, Scale::Small);
        assert_eq!(cli.ledger, PathBuf::from("campaign.wdlg"));
        assert!(!cli.resume);
        assert_eq!(cli.timeout_secs, 30);
        assert_eq!(cli.retries, 2);
        assert!(cli.fault.is_none());
        assert!(cli.events.is_none());
        assert!(!cli.quiet);
    }

    #[test]
    fn all_flags_parse() {
        let cli = parse(&[
            "--seeds",
            "25",
            "--seed-start",
            "100",
            "--jobs",
            "3",
            "--ledger",
            "/tmp/x.wdlg",
            "--resume",
            "--timeout-secs",
            "5",
            "--retries",
            "1",
            "--fault",
            "panic@3",
            "--events",
            "/tmp/x.jsonl",
            "--quiet",
        ])
        .unwrap();
        assert_eq!(cli.seeds, 25);
        assert_eq!(cli.seed_start, 100);
        assert_eq!(cli.jobs, 3);
        assert_eq!(cli.ledger, PathBuf::from("/tmp/x.wdlg"));
        assert!(cli.resume);
        assert_eq!(cli.timeout_secs, 5);
        assert_eq!(cli.retries, 1);
        assert_eq!(cli.fault.as_deref(), Some("panic@3"));
        assert_eq!(cli.events, Some(PathBuf::from("/tmp/x.jsonl")));
        assert!(cli.quiet);
        let cli = parse(&["--suite", "--scale", "test"]).unwrap();
        assert!(cli.suite);
        assert_eq!(cli.scale, Scale::Test);
    }

    #[test]
    fn unknown_flags_list_the_valid_ones() {
        let e = parse(&["--seedz", "10"]).unwrap_err();
        assert!(e.contains("--seeds,"), "{e}");
        assert!(e.contains("--resume"), "{e}");
        assert!(e.contains("--ledger"), "{e}");
    }

    #[test]
    fn value_errors_follow_the_scale_from_args_style() {
        let e = parse(&["--scale", "huge"]).unwrap_err();
        assert!(e.contains("valid values are test, small, ref"), "{e}");
        let e = parse(&["--scale"]).unwrap_err();
        assert!(e.contains("requires a value"), "{e}");
        let e = parse(&["--seeds", "many"]).unwrap_err();
        assert!(e.contains("unsigned integer"), "{e}");
        let e = parse(&["--jobs", "0"]).unwrap_err();
        assert!(e.contains("positive"), "{e}");
        let e = parse(&["--fault", "boom@1"]).unwrap_err();
        assert!(e.contains("panic, exit, hang, corrupt, truncate"), "{e}");
        let e = parse(&["--ledger"]).unwrap_err();
        assert!(e.contains("file path"), "{e}");
    }
}

//! **watchdog-campaign** — crash-isolated multi-process simulation
//! campaigns with a resumable, crash-safe results ledger.
//!
//! The paper's evaluation is a large campaign — twenty benchmarks ×
//! hardware configurations × detection modes, plus error-injection
//! studies — and the in-process worker pool (`watchdog-bench`) caps out
//! at thread-scoped parallelism: one panic or OOM kills the whole sweep,
//! and an overnight million-seed fuzz run cannot survive an interruption.
//! This crate adds the multi-process rung:
//!
//! * A **coordinator** ([`run_campaign`]) spawns N long-lived worker
//!   processes (re-exec'd `watchdog-cli worker` children speaking
//!   length-prefixed, checksummed frames over stdin/stdout — the
//!   [`frame`] module, built on the same varint primitives as the trace
//!   wire format) and feeds them a job queue of [`CellSpec`] cells
//!   (fuzz seeds or benchmark × config points).
//! * Every completed cell is appended to a **crash-safe ledger**
//!   (the [`ledger`] module): one fsync'd, checksummed record per cell
//!   under a header carrying the campaign's spec hash and a program
//!   fingerprint, so stale or foreign ledgers are refused instead of
//!   silently merged. A torn final record (the process died mid-write)
//!   is detected and dropped, never mis-parsed.
//! * **Crash isolation** is the point: a worker that panics, exits,
//!   hangs past the heartbeat timeout, or emits a corrupt frame is
//!   killed and respawned with bounded exponential backoff, and its
//!   outstanding cell is retried a bounded number of times. Failures are
//!   deduplicated by (violation kind, faulting pc) for the progress
//!   line.
//! * `--resume` replays the ledger and schedules only the missing
//!   cells; the completed ledger is compacted into canonical (cell-id)
//!   order, making it **byte-identical** to the ledger of an
//!   undisturbed serial run ([`serial_ledger_bytes`]).
//! * `--events PATH` streams a JSONL **flight record** (the [`events`]
//!   module): worker spawns and reaps with reasons, Hello latency,
//!   dispatches, per-cell completions with the ledger fsync time,
//!   retries, respawns and periodic throughput — flushed per line, so a
//!   killed campaign still leaves a readable record.
//!
//! Every failure path is exercised deterministically in CI by the
//! [`fault`] module: the `WATCHDOG_FAULT` environment knob (a parsed
//! [`FaultPlan`]) makes workers panic, exit nonzero, hang, or emit
//! truncated/corrupt frames at chosen cells.
//!
//! # Example
//!
//! ```no_run
//! use watchdog_campaign::{run_campaign, CampaignConfig, CampaignSpec};
//!
//! let spec = CampaignSpec::fuzz(0, 1000);
//! let mut cfg = CampaignConfig::new("/usr/local/bin/watchdog-cli");
//! cfg.jobs = 8;
//! let stats = run_campaign(&spec, &cfg, "fuzz.wdlg".as_ref(), true)?;
//! assert_eq!(stats.cells, 1000);
//! # Ok::<(), watchdog_campaign::CampaignError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cell;
pub mod cli;
pub mod coordinator;
pub mod events;
pub mod fault;
pub mod frame;
pub mod ledger;
pub mod validate;
pub mod worker;

pub use cell::{execute_cell, CampaignSpec, CellOutcome, CellSpec};
pub use cli::{campaign_main, parse_campaign_args, CampaignCli};
pub use coordinator::{
    run_campaign, run_campaign_serial, serial_ledger_bytes, CampaignConfig, CampaignError,
    CampaignStats,
};
pub use events::{parse_jsonl, EventLog, EVENTS_SCHEMA};
pub use fault::{FaultKind, FaultPlan, FAULT_ENV};
pub use ledger::{read_canonical, CellRecord, LedgerError, LedgerHeader};
pub use validate::{cross_check, validate_events, EventsSummary};
pub use worker::worker_entry;

/// FNV-1a over a byte slice (the checksum/fingerprint primitive shared by
/// frames, ledger records and spec hashes — one implementation, so the
/// reader and writer can never disagree).
pub(crate) fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// FNV-1a accumulation of further bytes into an existing hash.
pub(crate) fn fnv64_more(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= u64::from(b);
        *h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
}

//! Machine-readable campaign event stream: one JSON object per line
//! (JSONL), written by the coordinator as the campaign runs.
//!
//! The ledger is the campaign's *result* — canonical, byte-identical to
//! a serial run. The event stream is its *flight recorder*: worker
//! spawns and reaps, Hello latency, dispatches, per-cell completions
//! with the ledger fsync time, retries, respawns and periodic
//! throughput. Lines are flushed as they are written, so a crashed or
//! killed campaign still leaves a readable record up to the moment it
//! died.
//!
//! Every line carries `t_ms` (milliseconds since the campaign started)
//! and `event`; the first line is always `campaign_start` with the
//! [`EVENTS_SCHEMA`] tag. The fault-injection suite asserts that each
//! injected `WATCHDOG_FAULT` shows up here as its reap/retry/respawn
//! trail.

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::time::Instant;

use watchdog_telemetry::JsonValue;

/// Schema tag carried by the `campaign_start` event.
pub const EVENTS_SCHEMA: &str = "watchdog-campaign-events-v1";

/// A JSONL event sink; a disabled log swallows events for free so call
/// sites stay unconditional.
#[derive(Debug)]
pub struct EventLog {
    out: Option<BufWriter<File>>,
    start: Instant,
}

impl EventLog {
    /// A log that drops everything (no `--events` flag).
    pub fn disabled() -> EventLog {
        EventLog {
            out: None,
            start: Instant::now(),
        }
    }

    /// Creates (truncating) the JSONL file at `path`.
    ///
    /// # Errors
    ///
    /// The underlying file-creation error.
    pub fn create(path: &Path) -> io::Result<EventLog> {
        Ok(EventLog {
            out: Some(BufWriter::new(File::create(path)?)),
            start: Instant::now(),
        })
    }

    /// Whether events are actually being written.
    pub fn enabled(&self) -> bool {
        self.out.is_some()
    }

    /// Appends one event line: `t_ms`, `event`, then `fields` in the
    /// given order. Write failures are deliberately swallowed — the
    /// flight recorder must never abort the campaign it records.
    pub fn emit(&mut self, event: &str, fields: Vec<(String, JsonValue)>) {
        let Some(out) = self.out.as_mut() else { return };
        let mut obj = Vec::with_capacity(fields.len() + 2);
        obj.push((
            "t_ms".to_string(),
            JsonValue::Num(self.start.elapsed().as_secs_f64() * 1e3),
        ));
        obj.push(("event".to_string(), JsonValue::str(event)));
        obj.extend(fields);
        let line = JsonValue::Obj(obj).render();
        let _ = writeln!(out, "{line}");
        let _ = out.flush();
    }
}

/// Field constructor for counters and ids.
pub fn f_int(name: &str, v: u64) -> (String, JsonValue) {
    (name.to_string(), JsonValue::Int(v))
}

/// Field constructor for measurements (latency, rates).
pub fn f_num(name: &str, v: f64) -> (String, JsonValue) {
    (name.to_string(), JsonValue::Num(v))
}

/// Field constructor for labels.
pub fn f_str(name: &str, v: impl Into<String>) -> (String, JsonValue) {
    (name.to_string(), JsonValue::Str(v.into()))
}

/// Parses a JSONL document back into one [`JsonValue`] per non-empty
/// line — the read side the fault-injection suite and CI smoke use.
///
/// # Errors
///
/// The first line that fails to parse, with its 1-based line number.
pub fn parse_jsonl(text: &str) -> Result<Vec<JsonValue>, String> {
    text.lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty())
        .map(|(i, l)| JsonValue::parse(l).map_err(|e| format!("line {}: {e}", i + 1)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_log_swallows_everything() {
        let mut log = EventLog::disabled();
        assert!(!log.enabled());
        log.emit("spawn", vec![f_int("worker", 0)]);
    }

    #[test]
    fn events_render_as_parseable_jsonl() {
        let dir = std::env::temp_dir().join(format!("wd-events-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("events.jsonl");
        let mut log = EventLog::create(&path).unwrap();
        assert!(log.enabled());
        log.emit(
            "campaign_start",
            vec![f_str("schema", EVENTS_SCHEMA), f_int("cells", 4)],
        );
        log.emit(
            "done",
            vec![
                f_int("worker", 1),
                f_int("cell", 3),
                f_num("fsync_ms", 0.25),
            ],
        );
        drop(log);
        let text = std::fs::read_to_string(&path).unwrap();
        let lines = parse_jsonl(&text).unwrap();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0].get("event").and_then(JsonValue::as_str),
            Some("campaign_start")
        );
        assert_eq!(
            lines[0].get("schema").and_then(JsonValue::as_str),
            Some(EVENTS_SCHEMA)
        );
        assert_eq!(lines[1].get("cell").and_then(JsonValue::as_u64), Some(3));
        assert!(lines[1].get("t_ms").and_then(JsonValue::as_f64).is_some());
        assert!(parse_jsonl("{\"a\": }").is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}

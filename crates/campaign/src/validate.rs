//! Schema validation of a campaign `--events` flight record, and the
//! ledger cross-check behind `watchdog-cli events validate`.
//!
//! The event stream and the ledger describe the same campaign from two
//! sides: the stream is the flight recorder (flushed per line, survives
//! crashes), the ledger is the durable result. [`validate_events`]
//! checks every line against the `watchdog-campaign-events-v1`
//! vocabulary — field presence, field types, reap reasons, monotonic
//! timestamps — and [`cross_check`] then verifies the two sides agree:
//! every durable `done`/`retries_exhausted` event must match the
//! deduplicated ledger outcome for its cell, and a stream that reached
//! `campaign_end` must account for exactly the ledger's record count.

use std::collections::BTreeMap;

use watchdog_telemetry::JsonValue;

use crate::events::EVENTS_SCHEMA;
use crate::ledger::{dedup, ParsedLedger};

/// Reap reasons the coordinator emits.
const REAP_REASONS: [&str; 5] = [
    "timeout",
    "pipe-closed",
    "misattributed-done",
    "bad-frame",
    "eof",
];

/// Field types in the event vocabulary.
#[derive(Debug, Clone, Copy)]
enum Ty {
    /// Unsigned integer (ids, counters).
    Int,
    /// Any number (measurements — also accepts integers).
    Num,
    /// String label.
    Str,
    /// Boolean flag.
    Bool,
}

/// Required fields per event, beyond the universal `t_ms` + `event`.
fn event_spec(event: &str) -> Option<&'static [(&'static str, Ty)]> {
    Some(match event {
        "campaign_start" => &[
            ("schema", Ty::Str),
            ("cells", Ty::Int),
            ("resumed", Ty::Int),
            ("jobs", Ty::Int),
        ],
        "spawn" => &[("worker", Ty::Int), ("gen", Ty::Int)],
        "respawn" => &[("worker", Ty::Int), ("respawns", Ty::Int)],
        "dispatch" => &[("worker", Ty::Int), ("cell", Ty::Int), ("attempt", Ty::Int)],
        "reap" => &[("worker", Ty::Int), ("reason", Ty::Str)],
        "hello" => &[("worker", Ty::Int), ("latency_ms", Ty::Num)],
        "done" => &[
            ("worker", Ty::Int),
            ("cell", Ty::Int),
            ("attempt", Ty::Int),
            ("ok", Ty::Bool),
            ("fsync_ms", Ty::Num),
        ],
        "retry" => &[("cell", Ty::Int), ("attempt", Ty::Int)],
        "retries_exhausted" => &[("cell", Ty::Int), ("attempts", Ty::Int)],
        "progress" => &[
            ("done", Ty::Int),
            ("cells", Ty::Int),
            ("cells_per_s", Ty::Num),
            ("workers_alive", Ty::Int),
            ("retries", Ty::Int),
        ],
        "campaign_end" => &[
            ("completed", Ty::Int),
            ("retries", Ty::Int),
            ("respawns", Ty::Int),
            ("failures", Ty::Int),
            ("unique_failures", Ty::Int),
            ("elapsed_ms", Ty::Int),
            ("cells_per_s", Ty::Num),
        ],
        _ => return None,
    })
}

/// What a structurally valid stream said, condensed for cross-checking
/// and for the CLI's one-line summary.
#[derive(Debug, Clone, PartialEq)]
pub struct EventsSummary {
    /// Non-empty event lines.
    pub lines: usize,
    /// Occurrences per event name, in name order.
    pub counts: BTreeMap<String, u64>,
    /// `cells` declared by `campaign_start`.
    pub cells: u64,
    /// `resumed` declared by `campaign_start` (cells already durable in
    /// the ledger before this stream's first event).
    pub resumed: u64,
    /// First durable outcome per cell: `true` from a `done` with
    /// `ok: true`, `false` from a failed `done` or `retries_exhausted`.
    pub outcomes: BTreeMap<u32, bool>,
    /// `(completed, failures)` from `campaign_end`, when the stream
    /// recorded a clean finish (a crashed campaign has no such line).
    pub end: Option<(u64, u64)>,
}

/// Parses one event line's universal envelope, returning the event name.
fn envelope<'a>(line: &'a JsonValue, n: usize, last_t: &mut f64) -> Result<&'a str, String> {
    let t = line
        .get("t_ms")
        .and_then(JsonValue::as_f64)
        .ok_or_else(|| format!("line {n}: missing numeric t_ms"))?;
    if t < *last_t {
        return Err(format!(
            "line {n}: t_ms went backwards ({t} after {last_t})"
        ));
    }
    *last_t = t;
    line.get("event")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| format!("line {n}: missing event name"))
}

/// Validates one parsed JSONL stream against the
/// [`EVENTS_SCHEMA`] vocabulary.
///
/// # Errors
///
/// A human-readable description of the first violation, with its
/// 1-based line number.
pub fn validate_events(lines: &[JsonValue]) -> Result<EventsSummary, String> {
    if lines.is_empty() {
        return Err("empty event stream (no lines)".into());
    }
    let mut summary = EventsSummary {
        lines: lines.len(),
        counts: BTreeMap::new(),
        cells: 0,
        resumed: 0,
        outcomes: BTreeMap::new(),
        end: None,
    };
    let mut last_t = 0.0f64;
    for (i, line) in lines.iter().enumerate() {
        let n = i + 1;
        let event = envelope(line, n, &mut last_t)?;
        let spec = event_spec(event).ok_or_else(|| format!("line {n}: unknown event {event:?}"))?;
        for (field, ty) in spec {
            let v = line
                .get(field)
                .ok_or_else(|| format!("line {n}: {event} missing field {field:?}"))?;
            let ok = match ty {
                Ty::Int => v.as_u64().is_some(),
                Ty::Num => v.as_f64().is_some(),
                Ty::Str => v.as_str().is_some(),
                Ty::Bool => matches!(v, JsonValue::Bool(_)),
            };
            if !ok {
                return Err(format!(
                    "line {n}: {event} field {field:?} has the wrong type (expected {ty:?})"
                ));
            }
        }
        match event {
            "campaign_start" => {
                if i != 0 {
                    return Err(format!("line {n}: campaign_start is not the first event"));
                }
                let schema = line.get("schema").and_then(JsonValue::as_str).unwrap();
                if schema != EVENTS_SCHEMA {
                    return Err(format!(
                        "line {n}: schema {schema:?}, expected {EVENTS_SCHEMA:?}"
                    ));
                }
                summary.cells = line.get("cells").and_then(JsonValue::as_u64).unwrap();
                summary.resumed = line.get("resumed").and_then(JsonValue::as_u64).unwrap();
            }
            "reap" => {
                let reason = line.get("reason").and_then(JsonValue::as_str).unwrap();
                if !REAP_REASONS.contains(&reason) {
                    return Err(format!("line {n}: unknown reap reason {reason:?}"));
                }
            }
            "done" => {
                let cell = line.get("cell").and_then(JsonValue::as_u64).unwrap() as u32;
                let ok = matches!(line.get("ok"), Some(JsonValue::Bool(true)));
                // First durable outcome wins, matching the ledger's
                // keep-first append discipline for raced duplicates.
                summary.outcomes.entry(cell).or_insert(ok);
            }
            "retries_exhausted" => {
                let cell = line.get("cell").and_then(JsonValue::as_u64).unwrap() as u32;
                summary.outcomes.entry(cell).or_insert(false);
            }
            "campaign_end" => {
                if summary.end.is_some() {
                    return Err(format!("line {n}: second campaign_end"));
                }
                summary.end = Some((
                    line.get("completed").and_then(JsonValue::as_u64).unwrap(),
                    line.get("failures").and_then(JsonValue::as_u64).unwrap(),
                ));
            }
            _ => {}
        }
        *summary.counts.entry(event.to_string()).or_insert(0) += 1;
    }
    if lines[0].get("event").and_then(JsonValue::as_str) != Some("campaign_start") {
        return Err("line 1: stream does not start with campaign_start".into());
    }
    Ok(summary)
}

/// Cross-checks a validated stream against the campaign's parsed ledger.
///
/// * the stream's declared cell total must match the ledger header;
/// * every durable outcome in the stream must match the deduplicated
///   ledger outcome for that cell;
/// * a stream with a `campaign_end` must account (with the resumed
///   cells) for every ledger record and for the ledger's failure count;
///   a crashed stream may trail the ledger but never lead it.
///
/// # Errors
///
/// A human-readable description of the first disagreement.
pub fn cross_check(summary: &EventsSummary, ledger: &ParsedLedger) -> Result<(), String> {
    if summary.cells != u64::from(ledger.header.cells) {
        return Err(format!(
            "campaign_start declares {} cells, ledger header has {}",
            summary.cells, ledger.header.cells
        ));
    }
    let durable = dedup(&ledger.records);
    for (&cell, &ok) in &summary.outcomes {
        match durable.get(&cell) {
            None => {
                return Err(format!(
                    "events report cell {cell} done, ledger has no record"
                ))
            }
            Some(outcome) if outcome.is_pass() != ok => {
                return Err(format!(
                    "cell {cell}: events say ok={ok}, ledger says ok={}",
                    outcome.is_pass()
                ));
            }
            Some(_) => {}
        }
    }
    let accounted = summary.outcomes.len() as u64 + summary.resumed;
    match summary.end {
        Some((completed, failures)) => {
            if accounted != durable.len() as u64 {
                return Err(format!(
                    "completed stream accounts for {accounted} cells \
                     ({} events + {} resumed), ledger has {} records",
                    summary.outcomes.len(),
                    summary.resumed,
                    durable.len()
                ));
            }
            if completed + summary.resumed != durable.len() as u64 {
                return Err(format!(
                    "campaign_end counted {completed} completed + {} resumed, \
                     ledger has {} records",
                    summary.resumed,
                    durable.len()
                ));
            }
            let ledger_failures = durable.values().filter(|o| !o.is_pass()).count() as u64;
            if failures != ledger_failures {
                return Err(format!(
                    "campaign_end counted {failures} failures, ledger has {ledger_failures}"
                ));
            }
        }
        None => {
            if accounted > durable.len() as u64 {
                return Err(format!(
                    "events account for {accounted} cells, ledger has only {} records \
                     — the stream leads its own ledger",
                    durable.len()
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::CellOutcome;
    use crate::events::parse_jsonl;
    use crate::ledger::{CellRecord, LedgerHeader};

    fn stream(lines: &[&str]) -> Vec<JsonValue> {
        parse_jsonl(&lines.join("\n")).unwrap()
    }

    fn start_line(cells: u32, resumed: u32) -> String {
        format!(
            r#"{{"t_ms":0.0,"event":"campaign_start","schema":"{EVENTS_SCHEMA}","cells":{cells},"resumed":{resumed},"jobs":2}}"#
        )
    }

    fn done_line(t: f64, cell: u32, ok: bool) -> String {
        format!(
            r#"{{"t_ms":{t},"event":"done","worker":0,"cell":{cell},"attempt":0,"ok":{ok},"fsync_ms":0.1}}"#
        )
    }

    fn ledger_with(outcomes: &[(u32, bool)], cells: u32) -> ParsedLedger {
        ParsedLedger {
            header: LedgerHeader {
                version: 1,
                spec_hash: 1,
                probe_fingerprint: 2,
                cells,
            },
            records: outcomes
                .iter()
                .map(|&(cell, ok)| CellRecord {
                    cell,
                    outcome: if ok {
                        CellOutcome::Pass {
                            insts: 1,
                            digest: 0,
                        }
                    } else {
                        CellOutcome::Fail {
                            kind: 0,
                            pc: 0,
                            detail: String::new(),
                        }
                    },
                })
                .collect(),
            valid_len: 0,
            torn: false,
        }
    }

    #[test]
    fn a_clean_stream_validates_and_cross_checks() {
        let end = r#"{"t_ms":9.0,"event":"campaign_end","completed":2,"retries":0,"respawns":0,"failures":1,"unique_failures":1,"elapsed_ms":9,"cells_per_s":222.0}"#;
        let lines = stream(&[
            &start_line(2, 0),
            r#"{"t_ms":1.0,"event":"spawn","worker":0,"gen":1}"#,
            r#"{"t_ms":2.0,"event":"hello","worker":0,"latency_ms":1.5}"#,
            r#"{"t_ms":3.0,"event":"dispatch","worker":0,"cell":0,"attempt":0}"#,
            &done_line(4.0, 0, true),
            &done_line(5.0, 1, false),
            end,
        ]);
        let summary = validate_events(&lines).unwrap();
        assert_eq!(summary.cells, 2);
        assert_eq!(summary.outcomes.len(), 2);
        assert_eq!(summary.end, Some((2, 1)));
        assert_eq!(summary.counts["done"], 2);
        cross_check(&summary, &ledger_with(&[(0, true), (1, false)], 2)).unwrap();
    }

    #[test]
    fn schema_violations_name_the_line() {
        // Wrong first event.
        let err = validate_events(&stream(&[&done_line(0.0, 0, true)])).unwrap_err();
        assert!(err.contains("campaign_start"), "{err}");
        // Unknown event.
        let err = validate_events(&stream(&[
            &start_line(1, 0),
            r#"{"t_ms":1.0,"event":"warp","worker":0}"#,
        ]))
        .unwrap_err();
        assert!(err.contains("line 2") && err.contains("warp"), "{err}");
        // Missing field.
        let err = validate_events(&stream(&[
            &start_line(1, 0),
            r#"{"t_ms":1.0,"event":"spawn","worker":0}"#,
        ]))
        .unwrap_err();
        assert!(err.contains("gen"), "{err}");
        // Wrong type.
        let err = validate_events(&stream(&[
            &start_line(1, 0),
            r#"{"t_ms":1.0,"event":"spawn","worker":"zero","gen":1}"#,
        ]))
        .unwrap_err();
        assert!(err.contains("wrong type"), "{err}");
        // Unknown reap reason.
        let err = validate_events(&stream(&[
            &start_line(1, 0),
            r#"{"t_ms":1.0,"event":"reap","worker":0,"reason":"cosmic-rays"}"#,
        ]))
        .unwrap_err();
        assert!(err.contains("cosmic-rays"), "{err}");
        // Time running backwards.
        let err = validate_events(&stream(&[
            &start_line(1, 0),
            r#"{"t_ms":5.0,"event":"spawn","worker":0,"gen":1}"#,
            r#"{"t_ms":1.0,"event":"spawn","worker":1,"gen":1}"#,
        ]))
        .unwrap_err();
        assert!(err.contains("backwards"), "{err}");
    }

    #[test]
    fn cross_check_catches_ledger_disagreements() {
        let lines = stream(&[&start_line(2, 0), &done_line(1.0, 0, true)]);
        let summary = validate_events(&lines).unwrap();
        // Cell count mismatch.
        let err = cross_check(&summary, &ledger_with(&[(0, true)], 3)).unwrap_err();
        assert!(err.contains("cells"), "{err}");
        // Outcome flip.
        let err = cross_check(&summary, &ledger_with(&[(0, false)], 2)).unwrap_err();
        assert!(err.contains("cell 0"), "{err}");
        // Event with no ledger record: the stream leads the ledger.
        let err = cross_check(&summary, &ledger_with(&[], 2)).unwrap_err();
        assert!(err.contains("no record"), "{err}");
        // A crashed stream trailing the ledger is fine.
        cross_check(&summary, &ledger_with(&[(0, true), (1, false)], 2)).unwrap();
    }

    #[test]
    fn completed_streams_must_account_for_every_record() {
        let end = r#"{"t_ms":2.0,"event":"campaign_end","completed":1,"retries":0,"respawns":0,"failures":0,"unique_failures":0,"elapsed_ms":2,"cells_per_s":500.0}"#;
        let lines = stream(&[&start_line(2, 1), &done_line(1.0, 1, true), end]);
        let summary = validate_events(&lines).unwrap();
        // 1 event outcome + 1 resumed == 2 ledger records: clean.
        cross_check(&summary, &ledger_with(&[(0, true), (1, true)], 2)).unwrap();
        // Extra ledger record nobody accounts for.
        let err = cross_check(
            &summary,
            &ledger_with(&[(0, true), (1, true), (2, true)], 2),
        );
        assert!(err.is_err());
    }

    #[test]
    fn retries_exhausted_counts_as_a_failed_cell() {
        let lines = stream(&[
            &start_line(1, 0),
            r#"{"t_ms":1.0,"event":"retries_exhausted","cell":0,"attempts":3}"#,
        ]);
        let summary = validate_events(&lines).unwrap();
        assert_eq!(summary.outcomes.get(&0), Some(&false));
        cross_check(&summary, &ledger_with(&[(0, false)], 1)).unwrap();
    }
}

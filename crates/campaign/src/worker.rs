//! The worker side of the campaign protocol.
//!
//! A worker is `watchdog-cli worker`: the same binary as the
//! coordinator, re-exec'd with piped stdin/stdout. It announces itself
//! with a `Hello` frame, then loops — read a job frame, execute the
//! cell, write a `Done` frame — until a `Shutdown` frame or clean EOF.
//! All diagnostics go to stderr (inherited from the coordinator); stdout
//! carries nothing but frames.
//!
//! The worker is where injected faults live ([`crate::fault`]): before
//! executing a job it consults the `WATCHDOG_FAULT` plan and, at a
//! matching (cell, attempt), panics, exits, hangs, or emits a
//! deliberately corrupt or truncated frame — exercising exactly the
//! failure surface the coordinator must survive.

use std::io::{self, Read, Write};
use std::time::Instant;

use crate::cell::execute_cell;
use crate::fault::{FaultKind, FaultPlan};
use crate::frame::{read_frame, write_frame, CoordMsg, FrameError, WorkerMsg, PROTO_VERSION};

/// Set (to any value) to make a worker print a one-line telemetry
/// summary — cells executed, time spent executing — to stderr on clean
/// shutdown. The coordinator sets it for its children whenever a
/// `--events` flight log is being recorded.
pub const WORKER_TELEMETRY_ENV: &str = "WATCHDOG_WORKER_TELEMETRY";

/// What one worker incarnation did, accumulated by [`worker_loop`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub(crate) struct WorkerStats {
    /// Cells executed to a `Done` frame (injected faults don't count).
    pub cells: u64,
    /// Host nanoseconds spent inside `execute_cell`.
    pub exec_ns: u64,
}

/// Runs the worker loop over stdin/stdout; returns the process exit
/// code. Wire this directly to `watchdog-cli worker`.
pub fn worker_entry() -> i32 {
    let plan = match FaultPlan::from_env() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("watchdog-cli worker: {e}");
            return 2;
        }
    };
    let stdin = io::stdin();
    let stdout = io::stdout();
    let mut stats = WorkerStats::default();
    let result = worker_loop(&mut stdin.lock(), &mut stdout.lock(), &plan, &mut stats);
    if std::env::var_os(WORKER_TELEMETRY_ENV).is_some() {
        eprintln!(
            "watchdog-cli worker: {} cell(s) executed in {:.1} ms",
            stats.cells,
            stats.exec_ns as f64 / 1e6
        );
    }
    match result {
        Ok(code) => code,
        Err(e) => {
            eprintln!("watchdog-cli worker: {e}");
            1
        }
    }
}

/// The protocol loop, factored over generic streams so the unit tests
/// can drive it with in-memory pipes.
pub(crate) fn worker_loop(
    input: &mut impl Read,
    output: &mut impl Write,
    plan: &FaultPlan,
    stats: &mut WorkerStats,
) -> Result<i32, FrameError> {
    write_frame(
        output,
        &WorkerMsg::Hello {
            proto: PROTO_VERSION,
        }
        .encode(),
    )
    .map_err(FrameError::Io)?;
    loop {
        let payload = match read_frame(input) {
            Ok(p) => p,
            // Coordinator closed our stdin: clean shutdown.
            Err(FrameError::Eof) => return Ok(0),
            Err(e) => return Err(e),
        };
        let msg = CoordMsg::decode(&payload).map_err(FrameError::Corrupt)?;
        let (cell, attempt, spec) = match msg {
            CoordMsg::Shutdown => return Ok(0),
            CoordMsg::Job {
                cell,
                attempt,
                spec,
            } => (cell, attempt, spec),
        };
        if let Some(kind) = plan.fault_for(cell, attempt) {
            inject(kind, cell, output)?;
            continue;
        }
        let t0 = Instant::now();
        let outcome = execute_cell(&spec);
        stats.exec_ns += u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
        stats.cells += 1;
        write_frame(output, &WorkerMsg::Done { cell, outcome }.encode()).map_err(FrameError::Io)?;
    }
}

/// Performs one injected fault. `Panic`, `Exit` and `Hang` do not
/// return; `Corrupt` and `Truncate` emit their malformed bytes and
/// return so the loop keeps running (the coordinator decides whether the
/// worker lives).
fn inject(kind: FaultKind, cell: u32, output: &mut impl Write) -> Result<(), FrameError> {
    match kind {
        FaultKind::Panic => panic!("injected fault: panic at cell {cell}"),
        FaultKind::Exit => {
            eprintln!("injected fault: exit(3) at cell {cell}");
            std::process::exit(3);
        }
        FaultKind::Hang => {
            eprintln!("injected fault: hang at cell {cell}");
            loop {
                std::thread::sleep(std::time::Duration::from_secs(3600));
            }
        }
        FaultKind::Corrupt => {
            // A frame whose checksum was computed before flipping a
            // payload byte: structurally complete, verifiably wrong.
            let payload = WorkerMsg::Done {
                cell,
                outcome: crate::cell::CellOutcome::Pass {
                    insts: 0,
                    digest: 0,
                },
            }
            .encode();
            let mut bytes = Vec::new();
            write_frame(&mut bytes, &payload).expect("vec write");
            bytes[4] ^= 0x55; // first payload byte
            output.write_all(&bytes).map_err(FrameError::Io)?;
            output.flush().map_err(FrameError::Io)?;
            Ok(())
        }
        FaultKind::Truncate => {
            // Half a frame: a length prefix promising more than arrives,
            // then a hard exit mid-payload.
            let payload = WorkerMsg::Done {
                cell,
                outcome: crate::cell::CellOutcome::Pass {
                    insts: 0,
                    digest: 0,
                },
            }
            .encode();
            let mut bytes = Vec::new();
            write_frame(&mut bytes, &payload).expect("vec write");
            let half = &bytes[..bytes.len() / 2];
            let _ = output.write_all(half);
            let _ = output.flush();
            eprintln!("injected fault: truncated frame at cell {cell}");
            std::process::exit(0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::{CellOutcome, CellSpec};
    use std::io::Cursor;

    fn drive(msgs: &[CoordMsg], plan: &FaultPlan) -> (i32, Vec<WorkerMsg>, WorkerStats) {
        let mut input = Vec::new();
        for m in msgs {
            write_frame(&mut input, &m.encode()).unwrap();
        }
        let mut output = Vec::new();
        let mut stats = WorkerStats::default();
        let code = worker_loop(&mut Cursor::new(input), &mut output, plan, &mut stats).unwrap();
        let mut replies = Vec::new();
        let mut r = Cursor::new(output);
        loop {
            match read_frame(&mut r) {
                Ok(p) => replies.push(WorkerMsg::decode(&p).unwrap()),
                Err(FrameError::Eof) => break,
                Err(e) => panic!("reply stream: {e}"),
            }
        }
        (code, replies, stats)
    }

    #[test]
    fn hello_then_jobs_then_shutdown() {
        let msgs = [
            CoordMsg::Job {
                cell: 0,
                attempt: 0,
                spec: CellSpec::Seed(11),
            },
            CoordMsg::Job {
                cell: 1,
                attempt: 0,
                spec: CellSpec::Seed(12),
            },
            CoordMsg::Shutdown,
        ];
        let (code, replies, stats) = drive(&msgs, &FaultPlan::default());
        assert_eq!(code, 0);
        assert_eq!(replies.len(), 3);
        assert_eq!(stats.cells, 2, "two cells executed");
        assert!(matches!(
            replies[0],
            WorkerMsg::Hello {
                proto: PROTO_VERSION
            }
        ));
        assert!(matches!(replies[1], WorkerMsg::Done { cell: 0, .. }));
        assert!(matches!(replies[2], WorkerMsg::Done { cell: 1, .. }));
    }

    #[test]
    fn clean_eof_without_shutdown_is_a_clean_exit() {
        let (code, replies, stats) = drive(&[], &FaultPlan::default());
        assert_eq!(code, 0);
        assert_eq!(replies.len(), 1, "just the hello");
        assert_eq!(stats, WorkerStats::default());
    }

    #[test]
    fn corrupt_fault_emits_a_checksum_failing_frame_and_keeps_running() {
        let plan = FaultPlan::parse("corrupt@5").unwrap();
        let mut input = Vec::new();
        write_frame(
            &mut input,
            &CoordMsg::Job {
                cell: 5,
                attempt: 0,
                spec: CellSpec::Seed(1),
            }
            .encode(),
        )
        .unwrap();
        write_frame(
            &mut input,
            &CoordMsg::Job {
                cell: 6,
                attempt: 0,
                spec: CellSpec::Seed(2),
            }
            .encode(),
        )
        .unwrap();
        let mut output = Vec::new();
        let mut stats = WorkerStats::default();
        let code = worker_loop(&mut Cursor::new(input), &mut output, &plan, &mut stats).unwrap();
        assert_eq!(code, 0);
        assert_eq!(stats.cells, 1, "the faulted dispatch doesn't count");
        let mut r = Cursor::new(output);
        // Hello is fine.
        let hello = read_frame(&mut r).unwrap();
        assert!(matches!(
            WorkerMsg::decode(&hello).unwrap(),
            WorkerMsg::Hello { .. }
        ));
        // The injected frame fails its checksum.
        assert!(matches!(
            read_frame(&mut r),
            Err(FrameError::Corrupt("checksum mismatch"))
        ));
        // (After a corrupt frame a real coordinator kills the worker and
        // discards the stream, so nothing more is read here.)
    }

    #[test]
    fn retried_cell_passes_a_single_shot_fault() {
        let plan = FaultPlan::parse("corrupt@5").unwrap();
        let msgs = [
            CoordMsg::Job {
                cell: 5,
                attempt: 1,
                spec: CellSpec::Seed(1),
            },
            CoordMsg::Shutdown,
        ];
        let (code, replies, _) = drive(&msgs, &plan);
        assert_eq!(code, 0);
        assert!(matches!(
            replies[1],
            WorkerMsg::Done {
                cell: 5,
                outcome: CellOutcome::Pass { .. }
            }
        ));
    }
}

//! Length-prefixed, checksummed frames over worker stdin/stdout.
//!
//! Layout per frame (integers little-endian raw, message payload built
//! from the trace-wire varint primitives):
//!
//! ```text
//! payload length (4 bytes LE) | payload | FNV-1a of payload (8 bytes LE)
//! ```
//!
//! The trailing checksum is what turns "worker emitted garbage" into a
//! detected, recoverable failure: a corrupt frame surfaces as
//! [`FrameError::Corrupt`], the coordinator kills the worker and retries
//! the cell, and the fault-injection suite proves that path.

use std::fmt;
use std::io::{self, Read, Write};

use watchdog_trace::wire::{get_uvarint, put_uvarint};

use crate::cell::{CellOutcome, CellSpec};
use crate::fnv64;

/// Protocol version, exchanged in the worker's `Hello`. A coordinator
/// refuses to feed cells to a worker speaking another version (mixed
/// binaries on one box).
pub const PROTO_VERSION: u64 = 1;

/// Upper bound on a frame payload; a length prefix beyond this is
/// corruption, not a real message (keeps a torn 4-byte prefix from
/// triggering a multi-gigabyte allocation).
pub const MAX_FRAME: u32 = 64 << 20;

/// Errors reading a frame.
#[derive(Debug)]
pub enum FrameError {
    /// The stream ended cleanly before a frame started.
    Eof,
    /// The frame is structurally invalid (torn prefix, oversized length,
    /// truncated payload, or checksum mismatch).
    Corrupt(&'static str),
    /// An underlying I/O error.
    Io(io::Error),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Eof => write!(f, "end of stream"),
            FrameError::Corrupt(why) => write!(f, "corrupt frame: {why}"),
            FrameError::Io(e) => write!(f, "frame i/o error: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Writes one frame (length, payload, checksum) and flushes.
///
/// # Errors
///
/// Any underlying I/O error (a dead worker's pipe returns `EPIPE`).
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.write_all(&fnv64(payload).to_le_bytes())?;
    w.flush()
}

/// Reads one frame, verifying the checksum.
///
/// # Errors
///
/// [`FrameError::Eof`] on a clean end of stream before the length
/// prefix; [`FrameError::Corrupt`] on a torn prefix/payload, oversized
/// length or checksum mismatch; [`FrameError::Io`] otherwise.
pub fn read_frame(r: &mut impl Read) -> Result<Vec<u8>, FrameError> {
    let mut len4 = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut len4[filled..]) {
            Ok(0) if filled == 0 => return Err(FrameError::Eof),
            Ok(0) => return Err(FrameError::Corrupt("truncated length prefix")),
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    let len = u32::from_le_bytes(len4);
    if len > MAX_FRAME {
        return Err(FrameError::Corrupt("frame length exceeds bound"));
    }
    let mut payload = vec![0u8; len as usize];
    read_exact_or(r, &mut payload, "truncated payload")?;
    let mut sum8 = [0u8; 8];
    read_exact_or(r, &mut sum8, "truncated checksum")?;
    if u64::from_le_bytes(sum8) != fnv64(&payload) {
        return Err(FrameError::Corrupt("checksum mismatch"));
    }
    Ok(payload)
}

fn read_exact_or(r: &mut impl Read, buf: &mut [u8], why: &'static str) -> Result<(), FrameError> {
    match r.read_exact(buf) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => Err(FrameError::Corrupt(why)),
        Err(e) => Err(FrameError::Io(e)),
    }
}

/// Coordinator → worker messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoordMsg {
    /// Exit the worker loop cleanly.
    Shutdown,
    /// Execute one cell. `attempt` counts retries (0 = first try) and is
    /// what lets single-shot injected faults fire exactly once.
    Job {
        /// Cell id (index into the campaign's cell list).
        cell: u32,
        /// Retry attempt, 0-based.
        attempt: u32,
        /// What to execute.
        spec: CellSpec,
    },
}

impl CoordMsg {
    /// Encodes the message payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match self {
            CoordMsg::Shutdown => buf.push(0),
            CoordMsg::Job {
                cell,
                attempt,
                spec,
            } => {
                buf.push(1);
                put_uvarint(&mut buf, u64::from(*cell));
                put_uvarint(&mut buf, u64::from(*attempt));
                spec.put(&mut buf);
            }
        }
        buf
    }

    /// Decodes a message payload.
    ///
    /// # Errors
    ///
    /// A static message naming the malformed field.
    pub fn decode(payload: &[u8]) -> Result<CoordMsg, &'static str> {
        let mut pos = 0;
        let msg = match first_byte(payload, &mut pos)? {
            0 => CoordMsg::Shutdown,
            1 => CoordMsg::Job {
                cell: uv32(payload, &mut pos)?,
                attempt: uv32(payload, &mut pos)?,
                spec: CellSpec::get(payload, &mut pos)?,
            },
            _ => return Err("unknown coordinator message tag"),
        };
        finish(payload, pos)?;
        Ok(msg)
    }
}

/// Worker → coordinator messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkerMsg {
    /// Sent once at startup; doubles as the liveness handshake.
    Hello {
        /// The worker's [`PROTO_VERSION`].
        proto: u64,
    },
    /// A completed cell.
    Done {
        /// The cell id from the job.
        cell: u32,
        /// Its deterministic outcome.
        outcome: CellOutcome,
    },
}

impl WorkerMsg {
    /// Encodes the message payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match self {
            WorkerMsg::Hello { proto } => {
                buf.push(0);
                put_uvarint(&mut buf, *proto);
            }
            WorkerMsg::Done { cell, outcome } => {
                buf.push(1);
                put_uvarint(&mut buf, u64::from(*cell));
                outcome.put(&mut buf);
            }
        }
        buf
    }

    /// Decodes a message payload.
    ///
    /// # Errors
    ///
    /// A static message naming the malformed field.
    pub fn decode(payload: &[u8]) -> Result<WorkerMsg, &'static str> {
        let mut pos = 0;
        let msg = match first_byte(payload, &mut pos)? {
            0 => WorkerMsg::Hello {
                proto: get_uvarint(payload, &mut pos).map_err(|_| "bad proto varint")?,
            },
            1 => WorkerMsg::Done {
                cell: uv32(payload, &mut pos)?,
                outcome: CellOutcome::get(payload, &mut pos)?,
            },
            _ => return Err("unknown worker message tag"),
        };
        finish(payload, pos)?;
        Ok(msg)
    }
}

fn first_byte(payload: &[u8], pos: &mut usize) -> Result<u8, &'static str> {
    let b = *payload.first().ok_or("empty message payload")?;
    *pos = 1;
    Ok(b)
}

fn uv32(payload: &[u8], pos: &mut usize) -> Result<u32, &'static str> {
    let v = get_uvarint(payload, pos).map_err(|_| "bad varint")?;
    u32::try_from(v).map_err(|_| "value exceeds 32 bits")
}

fn finish(payload: &[u8], pos: usize) -> Result<(), &'static str> {
    if pos == payload.len() {
        Ok(())
    } else {
        Err("trailing bytes after message")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn pipe_round_trip(payload: &[u8]) -> Vec<u8> {
        let mut buf = Vec::new();
        write_frame(&mut buf, payload).unwrap();
        let mut r = Cursor::new(buf);
        let got = read_frame(&mut r).unwrap();
        assert!(matches!(read_frame(&mut r), Err(FrameError::Eof)));
        got
    }

    #[test]
    fn frames_round_trip() {
        assert_eq!(pipe_round_trip(b""), b"");
        assert_eq!(pipe_round_trip(b"hello"), b"hello");
        let big = vec![0xabu8; 100_000];
        assert_eq!(pipe_round_trip(&big), big);
    }

    #[test]
    fn every_truncation_is_detected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"payload").unwrap();
        for cut in 1..buf.len() {
            let err = read_frame(&mut Cursor::new(&buf[..cut])).unwrap_err();
            assert!(
                matches!(err, FrameError::Corrupt(_)),
                "cut {cut}: got {err:?}"
            );
        }
    }

    #[test]
    fn corrupted_payload_fails_the_checksum() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"watchdog").unwrap();
        for i in 4..buf.len() {
            let mut bad = buf.clone();
            bad[i] ^= 0x40;
            let err = read_frame(&mut Cursor::new(&bad)).unwrap_err();
            assert!(
                matches!(err, FrameError::Corrupt("checksum mismatch")),
                "flip at {i}: got {err:?}"
            );
        }
    }

    #[test]
    fn oversized_length_is_rejected_without_allocating() {
        let mut buf = (MAX_FRAME + 1).to_le_bytes().to_vec();
        buf.extend_from_slice(&[0; 16]);
        assert!(matches!(
            read_frame(&mut Cursor::new(&buf)),
            Err(FrameError::Corrupt("frame length exceeds bound"))
        ));
    }

    #[test]
    fn messages_round_trip() {
        let msgs = [
            CoordMsg::Shutdown,
            CoordMsg::Job {
                cell: 0,
                attempt: 0,
                spec: CellSpec::Seed(42),
            },
            CoordMsg::Job {
                cell: u32::MAX,
                attempt: 3,
                spec: CellSpec::Seed(u64::MAX),
            },
        ];
        for m in msgs {
            assert_eq!(CoordMsg::decode(&m.encode()).unwrap(), m);
        }
        let msgs = [
            WorkerMsg::Hello {
                proto: PROTO_VERSION,
            },
            WorkerMsg::Done {
                cell: 7,
                outcome: CellOutcome::Pass {
                    insts: 123,
                    digest: 456,
                },
            },
            WorkerMsg::Done {
                cell: 8,
                outcome: CellOutcome::Fail {
                    kind: 2,
                    pc: 99,
                    detail: "wild pointer".into(),
                },
            },
        ];
        for m in msgs {
            assert_eq!(WorkerMsg::decode(&m.encode()).unwrap(), m);
        }
    }

    #[test]
    fn trailing_bytes_and_bad_tags_are_rejected() {
        let mut p = CoordMsg::Shutdown.encode();
        p.push(0);
        assert!(CoordMsg::decode(&p).is_err());
        assert!(CoordMsg::decode(&[9]).is_err());
        assert!(WorkerMsg::decode(&[9]).is_err());
        assert!(WorkerMsg::decode(&[]).is_err());
    }
}

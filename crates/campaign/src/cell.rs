//! Campaign cells: what one unit of work is, how it executes, and how its
//! spec and outcome serialize.
//!
//! A campaign is a flat list of [`CellSpec`]s — either differential fuzz
//! seeds or (benchmark × mode × scale) timing points. Execution
//! ([`execute_cell`]) is a **pure function of the spec**: the same cell
//! produces the same [`CellOutcome`] bytes whether it runs in a worker
//! process, in the serial reference runner, or in a resumed campaign —
//! which is what makes the final ledger byte-comparable across all three.

use std::panic::{self, AssertUnwindSafe};

use watchdog_core::error::ViolationKind;
use watchdog_core::prelude::*;
use watchdog_gen::{check_generated, generate, GenConfig};
use watchdog_trace::format::{get_mode, program_fingerprint, put_mode};
use watchdog_trace::wire::{get_uvarint, put_uvarint};
use watchdog_workloads::{all_benchmarks, benchmark, Scale};

use crate::{fnv64, fnv64_more};

/// Failure-kind code: the differential harness diverged on a benign
/// program (no oracle violation to attribute it to).
pub const KIND_NONE: u8 = 0xff;
/// Failure-kind code: the cell panicked or the simulator errored.
pub const KIND_PANIC: u8 = 0xfd;
/// Failure-kind code: the coordinator exhausted the retry budget for the
/// cell (the worker crashed or hung on every attempt).
pub const KIND_RETRIES_EXHAUSTED: u8 = 0xfe;

/// One schedulable unit of campaign work.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CellSpec {
    /// One `watchdog-gen` differential-fuzz seed (the full mode matrix
    /// of `check_seed`, up to 12 simulations).
    Seed(u64),
    /// One timed (benchmark × mode) point of the suite grid.
    Bench {
        /// Benchmark name (see `watchdog-cli list`).
        bench: String,
        /// Detection mode to simulate under.
        mode: Mode,
        /// Input scale.
        scale: Scale,
    },
}

impl CellSpec {
    /// Appends the wire encoding (shared by job frames, ledger hashing
    /// and the spec hash).
    pub fn put(&self, buf: &mut Vec<u8>) {
        match self {
            CellSpec::Seed(s) => {
                buf.push(0);
                put_uvarint(buf, *s);
            }
            CellSpec::Bench { bench, mode, scale } => {
                buf.push(1);
                put_uvarint(buf, bench.len() as u64);
                buf.extend_from_slice(bench.as_bytes());
                put_mode(buf, *mode);
                buf.push(scale_code(*scale));
            }
        }
    }

    /// Reads a spec encoded by [`CellSpec::put`] at `*pos`, advancing it.
    ///
    /// # Errors
    ///
    /// A static message naming the malformed field.
    pub fn get(buf: &[u8], pos: &mut usize) -> Result<CellSpec, &'static str> {
        match take_byte(buf, pos)? {
            0 => Ok(CellSpec::Seed(uv(buf, pos)?)),
            1 => {
                let len = uv(buf, pos)? as usize;
                let end = pos.checked_add(len).ok_or("cell name length overflows")?;
                let bytes = buf.get(*pos..end).ok_or("truncated cell name")?;
                *pos = end;
                let bench = std::str::from_utf8(bytes)
                    .map_err(|_| "cell name is not UTF-8")?
                    .to_string();
                let mode = get_mode(buf, pos).map_err(|_| "bad mode encoding in cell")?;
                let scale = scale_from_code(take_byte(buf, pos)?)?;
                Ok(CellSpec::Bench { bench, mode, scale })
            }
            _ => Err("unknown cell tag"),
        }
    }

    /// One-line human label (progress and failure messages).
    pub fn label(&self) -> String {
        match self {
            CellSpec::Seed(s) => format!("seed {s}"),
            CellSpec::Bench { bench, mode, scale } => {
                format!("{bench} under {} at {scale:?}", mode.label())
            }
        }
    }
}

/// The deterministic result of executing one cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CellOutcome {
    /// The cell completed and agreed with its oracle.
    Pass {
        /// Dynamic guest instructions (fuzz: the conservative functional
        /// run; bench: the timed run).
        insts: u64,
        /// FNV digest over the cell's full result (programs + per-mode
        /// reports for fuzz cells, the `RunReport` for bench cells).
        digest: u64,
    },
    /// The cell diverged, panicked, or exhausted its retry budget.
    Fail {
        /// Violation-kind code ([`kind_code`]), or one of the
        /// [`KIND_NONE`]/[`KIND_PANIC`]/[`KIND_RETRIES_EXHAUSTED`]
        /// sentinels. Together with `pc` this is the dedup key.
        kind: u8,
        /// Faulting instruction index (0 when not attributable).
        pc: u64,
        /// Human-readable detail (repro line for fuzz divergences).
        detail: String,
    },
}

impl CellOutcome {
    /// Whether the cell passed.
    pub fn is_pass(&self) -> bool {
        matches!(self, CellOutcome::Pass { .. })
    }

    /// The failure-dedup key `(kind, pc)`, if this is a failure.
    pub fn failure_key(&self) -> Option<(u8, u64)> {
        match self {
            CellOutcome::Pass { .. } => None,
            CellOutcome::Fail { kind, pc, .. } => Some((*kind, *pc)),
        }
    }

    /// Appends the wire encoding (shared by result frames and ledger
    /// records).
    pub fn put(&self, buf: &mut Vec<u8>) {
        match self {
            CellOutcome::Pass { insts, digest } => {
                buf.push(0);
                put_uvarint(buf, *insts);
                put_uvarint(buf, *digest);
            }
            CellOutcome::Fail { kind, pc, detail } => {
                buf.push(1);
                buf.push(*kind);
                put_uvarint(buf, *pc);
                put_uvarint(buf, detail.len() as u64);
                buf.extend_from_slice(detail.as_bytes());
            }
        }
    }

    /// Reads an outcome encoded by [`CellOutcome::put`] at `*pos`.
    ///
    /// # Errors
    ///
    /// A static message naming the malformed field.
    pub fn get(buf: &[u8], pos: &mut usize) -> Result<CellOutcome, &'static str> {
        match take_byte(buf, pos)? {
            0 => Ok(CellOutcome::Pass {
                insts: uv(buf, pos)?,
                digest: uv(buf, pos)?,
            }),
            1 => {
                let kind = take_byte(buf, pos)?;
                let pc = uv(buf, pos)?;
                let len = uv(buf, pos)? as usize;
                let end = pos.checked_add(len).ok_or("detail length overflows")?;
                let bytes = buf.get(*pos..end).ok_or("truncated failure detail")?;
                *pos = end;
                let detail = std::str::from_utf8(bytes)
                    .map_err(|_| "failure detail is not UTF-8")?
                    .to_string();
                Ok(CellOutcome::Fail { kind, pc, detail })
            }
            _ => Err("unknown outcome tag"),
        }
    }
}

/// Compact code for a [`ViolationKind`] (the dedup-key half).
pub fn kind_code(k: ViolationKind) -> u8 {
    match k {
        ViolationKind::UseAfterFree => 0,
        ViolationKind::UseAfterReturn => 1,
        ViolationKind::WildPointer => 2,
        ViolationKind::DoubleFree => 3,
        ViolationKind::InvalidFree => 4,
        ViolationKind::OutOfBounds => 5,
    }
}

fn scale_code(s: Scale) -> u8 {
    match s {
        Scale::Test => 0,
        Scale::Small => 1,
        Scale::Reference => 2,
    }
}

fn scale_from_code(b: u8) -> Result<Scale, &'static str> {
    Ok(match b {
        0 => Scale::Test,
        1 => Scale::Small,
        2 => Scale::Reference,
        _ => return Err("unknown scale code"),
    })
}

fn take_byte(buf: &[u8], pos: &mut usize) -> Result<u8, &'static str> {
    let b = *buf.get(*pos).ok_or("truncated encoding")?;
    *pos += 1;
    Ok(b)
}

fn uv(buf: &[u8], pos: &mut usize) -> Result<u64, &'static str> {
    get_uvarint(buf, pos).map_err(|_| "bad varint")
}

/// Executes one cell to its deterministic outcome. Panics inside the cell
/// (a simulator bug, a generator assertion) are caught and folded into a
/// [`CellOutcome::Fail`], so a poisoned cell produces a record instead of
/// killing its worker.
pub fn execute_cell(spec: &CellSpec) -> CellOutcome {
    match panic::catch_unwind(AssertUnwindSafe(|| execute_inner(spec))) {
        Ok(outcome) => outcome,
        Err(payload) => CellOutcome::Fail {
            kind: KIND_PANIC,
            pc: 0,
            detail: format!(
                "{} panicked: {}",
                spec.label(),
                payload_msg(payload.as_ref())
            ),
        },
    }
}

fn execute_inner(spec: &CellSpec) -> CellOutcome {
    match spec {
        CellSpec::Seed(seed) => {
            let g = generate(*seed, &GenConfig::default());
            match check_generated(&g) {
                Ok(o) => {
                    let mut digest = o.program_digest;
                    fnv64_more(&mut digest, &o.report_digest.to_le_bytes());
                    fnv64_more(&mut digest, &(o.runs as u64).to_le_bytes());
                    CellOutcome::Pass {
                        insts: o.insts,
                        digest,
                    }
                }
                Err(f) => CellOutcome::Fail {
                    kind: g.oracle.expected.map_or(KIND_NONE, kind_code),
                    pc: g.oracle.expected_pc.unwrap_or(0) as u64,
                    detail: f.to_string(),
                },
            }
        }
        CellSpec::Bench { bench, mode, scale } => {
            let Some(b) = benchmark(bench) else {
                return CellOutcome::Fail {
                    kind: KIND_PANIC,
                    pc: 0,
                    detail: format!("unknown benchmark {bench:?}"),
                };
            };
            let program = b.build(*scale);
            match Simulator::new(SimConfig::timed(*mode)).run(&program) {
                Ok(report) => match report.violation {
                    None => CellOutcome::Pass {
                        insts: report.machine.insts,
                        digest: fnv64(format!("{report:?}").as_bytes()),
                    },
                    Some(v) => CellOutcome::Fail {
                        kind: kind_code(v.kind),
                        pc: v.pc_index as u64,
                        detail: format!("{}: unexpected violation {v}", spec.label()),
                    },
                },
                Err(e) => CellOutcome::Fail {
                    kind: KIND_PANIC,
                    pc: 0,
                    detail: format!("{}: simulation failed: {e}", spec.label()),
                },
            }
        }
    }
}

fn payload_msg(payload: &(dyn std::any::Any + Send)) -> &str {
    payload
        .downcast_ref::<String>()
        .map(String::as_str)
        .or_else(|| payload.downcast_ref::<&str>().copied())
        .unwrap_or("non-string panic payload")
}

/// A whole campaign: the ordered cell list. Cell ids are indices into
/// this list; the ledger header pins the list via [`CampaignSpec::spec_hash`]
/// and the first cell's program via [`CampaignSpec::probe_fingerprint`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignSpec {
    /// The cells, in schedule order.
    pub cells: Vec<CellSpec>,
}

impl CampaignSpec {
    /// A differential-fuzz campaign over seeds
    /// `seed_start..seed_start + count`.
    pub fn fuzz(seed_start: u64, count: usize) -> CampaignSpec {
        CampaignSpec {
            cells: (0..count as u64)
                .map(|i| CellSpec::Seed(seed_start + i))
                .collect(),
        }
    }

    /// A timed suite campaign: all twenty benchmarks × the three headline
    /// modes (baseline, conservative, ISA-assisted) at `scale`.
    pub fn suite(scale: Scale) -> CampaignSpec {
        let modes = [
            Mode::Baseline,
            Mode::watchdog_conservative(),
            Mode::watchdog(),
        ];
        CampaignSpec {
            cells: all_benchmarks()
                .iter()
                .flat_map(|b| {
                    modes.iter().map(|m| CellSpec::Bench {
                        bench: b.name.to_string(),
                        mode: *m,
                        scale,
                    })
                })
                .collect(),
        }
    }

    /// FNV hash of the full encoded cell list — two campaigns share a
    /// ledger only if their cell lists are identical.
    pub fn spec_hash(&self) -> u64 {
        let mut buf = Vec::new();
        put_uvarint(&mut buf, self.cells.len() as u64);
        for c in &self.cells {
            c.put(&mut buf);
        }
        fnv64(&buf)
    }

    /// Fingerprint of the first cell's **built program** (the generator
    /// output for a fuzz campaign, the benchmark build for a suite
    /// campaign). A ledger written by a different generator or workload
    /// build hashes differently and is refused at resume, even when the
    /// cell list reads the same.
    pub fn probe_fingerprint(&self) -> u64 {
        match self.cells.first() {
            None => 0,
            Some(CellSpec::Seed(s)) => {
                program_fingerprint(&generate(*s, &GenConfig::default()).program)
            }
            Some(CellSpec::Bench { bench, scale, .. }) => {
                benchmark(bench).map_or(0, |b| program_fingerprint(&b.build(*scale)))
            }
        }
    }

    /// One-line description for reports.
    pub fn describe(&self) -> String {
        match self.cells.first() {
            Some(CellSpec::Seed(s)) => {
                format!(
                    "{} fuzz seeds {s}..{}",
                    self.cells.len(),
                    s + self.cells.len() as u64
                )
            }
            Some(CellSpec::Bench { scale, .. }) => {
                format!("{} (benchmark × mode) cells at {scale:?}", self.cells.len())
            }
            None => "0 cells".to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_spec(spec: &CellSpec) {
        let mut buf = Vec::new();
        spec.put(&mut buf);
        let mut pos = 0;
        assert_eq!(&CellSpec::get(&buf, &mut pos).unwrap(), spec);
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn specs_round_trip() {
        round_trip_spec(&CellSpec::Seed(0));
        round_trip_spec(&CellSpec::Seed(u64::MAX));
        for mode in [
            Mode::Baseline,
            Mode::watchdog(),
            Mode::watchdog_conservative(),
        ] {
            for scale in [Scale::Test, Scale::Small, Scale::Reference] {
                round_trip_spec(&CellSpec::Bench {
                    bench: "mcf".into(),
                    mode,
                    scale,
                });
            }
        }
    }

    #[test]
    fn outcomes_round_trip() {
        for o in [
            CellOutcome::Pass {
                insts: 0,
                digest: u64::MAX,
            },
            CellOutcome::Fail {
                kind: KIND_RETRIES_EXHAUSTED,
                pc: 12345,
                detail: "worker crashed on every attempt".into(),
            },
            CellOutcome::Fail {
                kind: 0,
                pc: 0,
                detail: String::new(),
            },
        ] {
            let mut buf = Vec::new();
            o.put(&mut buf);
            let mut pos = 0;
            assert_eq!(CellOutcome::get(&buf, &mut pos).unwrap(), o);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn truncated_encodings_are_rejected() {
        let mut buf = Vec::new();
        CellSpec::Bench {
            bench: "perl".into(),
            mode: Mode::watchdog(),
            scale: Scale::Test,
        }
        .put(&mut buf);
        for cut in 0..buf.len() {
            let mut pos = 0;
            assert!(
                CellSpec::get(&buf[..cut], &mut pos).is_err(),
                "cut at {cut} must not parse"
            );
        }
    }

    #[test]
    fn execute_is_deterministic_across_calls() {
        let cell = CellSpec::Seed(5);
        assert_eq!(execute_cell(&cell), execute_cell(&cell));
        let bench = CellSpec::Bench {
            bench: "comp".into(),
            mode: Mode::watchdog_conservative(),
            scale: Scale::Test,
        };
        let a = execute_cell(&bench);
        assert!(a.is_pass(), "{a:?}");
        assert_eq!(a, execute_cell(&bench));
    }

    #[test]
    fn unknown_benchmark_is_a_failure_record_not_a_panic() {
        let o = execute_cell(&CellSpec::Bench {
            bench: "nonsense".into(),
            mode: Mode::Baseline,
            scale: Scale::Test,
        });
        assert_eq!(o.failure_key(), Some((KIND_PANIC, 0)));
    }

    #[test]
    fn spec_hash_sees_every_cell() {
        let a = CampaignSpec::fuzz(0, 10);
        let b = CampaignSpec::fuzz(0, 11);
        let c = CampaignSpec::fuzz(1, 10);
        assert_ne!(a.spec_hash(), b.spec_hash());
        assert_ne!(a.spec_hash(), c.spec_hash());
        assert_eq!(a.spec_hash(), CampaignSpec::fuzz(0, 10).spec_hash());
    }

    #[test]
    fn suite_spec_covers_the_grid() {
        let s = CampaignSpec::suite(Scale::Test);
        assert_eq!(s.cells.len(), 60);
        assert_ne!(s.probe_fingerprint(), 0);
        assert!(s.describe().contains("60"));
    }
}

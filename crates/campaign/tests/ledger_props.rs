//! Property tests on ledger parsing: arbitrary record streams round
//! trip; arbitrary truncation drops exactly the torn record; payload
//! corruption never mis-parses; duplicate and interleaved-writer records
//! resolve first-write-wins.

use proptest::prelude::*;
use watchdog_campaign::cell::CellOutcome;
use watchdog_campaign::ledger::{
    canonical_bytes, dedup, parse_ledger, CellRecord, LedgerHeader, LEDGER_VERSION,
};

fn header(cells: u32) -> LedgerHeader {
    LedgerHeader {
        version: LEDGER_VERSION,
        spec_hash: 0x5eed_5eed_5eed_5eed,
        probe_fingerprint: 0xf1f1_f1f1_f1f1_f1f1,
        cells,
    }
}

/// Builds a record from generator-drawn raw fields.
fn record(cell: u32, pass: bool, a: u64, b: u64) -> CellRecord {
    let outcome = if pass {
        CellOutcome::Pass {
            insts: a,
            digest: b,
        }
    } else {
        CellOutcome::Fail {
            kind: (a % 256) as u8,
            pc: b,
            detail: format!("injected detail {a:x}/{b:x}"),
        }
    };
    CellRecord { cell, outcome }
}

fn serialize(h: &LedgerHeader, recs: &[CellRecord]) -> Vec<u8> {
    let mut buf = h.to_bytes();
    for r in recs {
        buf.extend_from_slice(&r.to_bytes());
    }
    buf
}

/// Raw record draw: (cell, pass?, two payload words).
fn raw_records() -> impl Strategy<Value = Vec<(u32, bool, u64, u64)>> {
    proptest::collection::vec((0u32..64, any::<bool>(), any::<u64>(), any::<u64>()), 0..24)
}

proptest! {
    /// Serialization round trips byte-for-byte and record-for-record.
    #[test]
    fn streams_round_trip(raw in raw_records()) {
        let recs: Vec<CellRecord> =
            raw.iter().map(|&(c, p, a, b)| record(c, p, a, b)).collect();
        let bytes = serialize(&header(64), &recs);
        let parsed = parse_ledger(&bytes).unwrap();
        prop_assert_eq!(&parsed.records, &recs);
        prop_assert!(!parsed.torn);
        prop_assert_eq!(parsed.valid_len, bytes.len() as u64);
    }

    /// Truncating the stream at ANY byte past the header yields exactly
    /// the whole-record prefix: the torn final record is detected and
    /// dropped, never mis-parsed into a wrong record.
    #[test]
    fn truncated_tails_recover_the_whole_record_prefix(
        raw in raw_records(),
        cut_pick in any::<u64>(),
    ) {
        let recs: Vec<CellRecord> =
            raw.iter().map(|&(c, p, a, b)| record(c, p, a, b)).collect();
        let h = header(64);
        let bytes = serialize(&h, &recs);
        let header_len = h.to_bytes().len();
        let mut boundaries = vec![header_len];
        for r in &recs {
            boundaries.push(boundaries.last().unwrap() + r.to_bytes().len());
        }
        let cut = header_len + (cut_pick as usize) % (bytes.len() - header_len + 1);
        let parsed = parse_ledger(&bytes[..cut]).unwrap();
        let whole = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
        prop_assert_eq!(&parsed.records, &recs[..whole]);
        prop_assert_eq!(parsed.valid_len as usize, boundaries[whole]);
        prop_assert_eq!(parsed.torn, cut != boundaries[whole]);
    }

    /// Flipping any payload byte of any record makes parsing stop at the
    /// last intact record — corrupted data is dropped, not delivered.
    #[test]
    fn payload_corruption_is_never_misparsed(
        raw in proptest::collection::vec((0u32..64, any::<bool>(), any::<u64>(), any::<u64>()), 1..16),
        victim_pick in any::<u64>(),
        byte_pick in any::<u64>(),
        flip in 1u64..256,
    ) {
        let recs: Vec<CellRecord> =
            raw.iter().map(|&(c, p, a, b)| record(c, p, a, b)).collect();
        let h = header(64);
        let mut bytes = serialize(&h, &recs);
        let header_len = h.to_bytes().len();
        let mut boundaries = vec![header_len];
        for r in &recs {
            boundaries.push(boundaries.last().unwrap() + r.to_bytes().len());
        }
        let victim = (victim_pick as usize) % recs.len();
        // Payload region: skip the marker byte and the length varint,
        // stop before the checksum varint.
        let mut payload = Vec::new();
        watchdog_trace::wire::put_uvarint(&mut payload, u64::from(recs[victim].cell));
        recs[victim].outcome.put(&mut payload);
        let mut lenbuf = Vec::new();
        watchdog_trace::wire::put_uvarint(&mut lenbuf, payload.len() as u64);
        let payload_off = 1 + lenbuf.len();
        let target = boundaries[victim] + payload_off + (byte_pick as usize) % payload.len();
        bytes[target] ^= flip as u8;
        let parsed = parse_ledger(&bytes).unwrap();
        prop_assert!(parsed.records.len() <= victim,
            "corrupt record {victim} must not survive (got {} records)", parsed.records.len());
        prop_assert_eq!(&parsed.records, &recs[..parsed.records.len()]);
        prop_assert!(parsed.torn);
    }

    /// Duplicate cells — whatever the interleaving — resolve to the
    /// first durable record, and canonical bytes are order-independent.
    #[test]
    fn duplicates_and_interleavings_resolve_first_write_wins(
        raw in proptest::collection::vec((0u32..8, any::<bool>(), any::<u64>(), any::<u64>()), 1..24),
    ) {
        let recs: Vec<CellRecord> =
            raw.iter().map(|&(c, p, a, b)| record(c, p, a, b)).collect();
        let h = header(8);
        let parsed = parse_ledger(&serialize(&h, &recs)).unwrap();
        let done = dedup(&parsed.records);
        // First-write-wins against a reference fold.
        let mut expect = std::collections::BTreeMap::new();
        for r in &recs {
            expect.entry(r.cell).or_insert_with(|| r.outcome.clone());
        }
        prop_assert_eq!(&done, &expect);
        // Canonical form ignores arrival order entirely.
        let mut rev = recs.clone();
        rev.reverse();
        let done_rev = {
            let p = parse_ledger(&serialize(&h, &rev)).unwrap();
            dedup(&p.records)
        };
        let mut expect_rev = std::collections::BTreeMap::new();
        for r in &rev {
            expect_rev.entry(r.cell).or_insert_with(|| r.outcome.clone());
        }
        prop_assert_eq!(&done_rev, &expect_rev);
        prop_assert!(!canonical_bytes(&h, &done).is_empty());
    }
}

/// A canonical ledger re-parses to itself (fixpoint), so comparing
/// canonical bytes is a sound equality on campaigns.
#[test]
fn canonicalization_is_a_fixpoint() {
    let recs: Vec<CellRecord> = (0..12u32)
        .rev()
        .map(|c| record(c, c % 3 != 0, u64::from(c) * 77, u64::from(c) ^ 0xbeef))
        .collect();
    let h = header(12);
    let canon = canonical_bytes(
        &h,
        &dedup(&parse_ledger(&serialize(&h, &recs)).unwrap().records),
    );
    let reparsed = parse_ledger(&canon).unwrap();
    let again = canonical_bytes(&reparsed.header, &dedup(&reparsed.records));
    assert_eq!(canon, again);
}

//! A NIST-Juliet-style use-after-free test-case generator (§9.2).
//!
//! The paper evaluates "the 291 test cases for use-after-free
//! vulnerabilities (CWE-416 and CWE-562) from the NIST Juliet Test Suite
//! for C/C++ ... It successfully detected and thwarted the attack in all
//! the 291 test cases, and it did so without any false positives."
//!
//! Juliet cases are a cross product of *base flaws* and *control-flow
//! variants*. We reproduce that structure: fourteen base scenarios
//! (ten CWE-416 heap flaws, four CWE-562 stack flaws) × seven control-flow
//! variants × three allocation sizes = 294, trimmed to the paper's 291.
//! Every *bad* case has a *benign twin* (the Juliet "good" function) used
//! for false-positive testing.

use watchdog_core::error::ViolationKind;
use watchdog_isa::{AluOp, Cond, Gpr, Program, ProgramBuilder};

/// CWE class of a case.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cwe {
    /// CWE-416: use after free.
    Cwe416,
    /// CWE-562: return of stack variable address.
    Cwe562,
}

/// One generated test case.
#[derive(Debug)]
pub struct JulietCase {
    /// Case name, e.g. `CWE416_read_after_free__via_call_64`.
    pub name: String,
    /// CWE class.
    pub cwe: Cwe,
    /// The guest program.
    pub program: Program,
    /// Expected detection: `Some(kind)` for bad cases, `None` for benign
    /// twins.
    pub expected: Option<ViolationKind>,
}

fn g(n: u8) -> Gpr {
    Gpr::new(n)
}

const ZERO: Gpr = Gpr::new(13);

/// A scenario body: emits the (good or bad) flaw site. Scenario bodies may
/// use registers `g1..g8`; `g11`/`g12` belong to the flow wrapper and
/// `g13` is the zero register.
type Body = fn(&mut ProgramBuilder, bool, i64);

#[derive(Debug, Clone, Copy)]
struct Scenario {
    name: &'static str,
    cwe: Cwe,
    expected: ViolationKind,
    body: Body,
}

// ---------------------------------------------------------------------
// CWE-416 scenario bodies.
// ---------------------------------------------------------------------

fn read_after_free(b: &mut ProgramBuilder, bad: bool, size: i64) {
    let (p, sz, v) = (g(1), g(4), g(3));
    b.li(sz, size);
    b.malloc(p, sz);
    b.li(v, 7);
    b.st8(v, p, 0);
    if bad {
        b.free(p);
        b.ld8(v, p, 0);
    } else {
        b.ld8(v, p, 0);
        b.free(p);
    }
}

fn write_after_free(b: &mut ProgramBuilder, bad: bool, size: i64) {
    let (p, sz, v) = (g(1), g(4), g(3));
    b.li(sz, size);
    b.malloc(p, sz);
    b.li(v, 41);
    if bad {
        b.free(p);
        b.st8(v, p, 0);
    } else {
        b.st8(v, p, 0);
        b.free(p);
    }
}

fn use_after_realloc(b: &mut ProgramBuilder, bad: bool, size: i64) {
    // Fig. 1 left: the freed memory is immediately recycled by another
    // allocation, so location-based checking would pass.
    let (p, q, r, sz, v) = (g(1), g(2), g(7), g(4), g(3));
    b.li(sz, size);
    b.malloc(p, sz);
    b.mov(q, p);
    b.free(p);
    b.malloc(r, sz); // LIFO reuse: r == q's address
    if bad {
        b.ld8(v, q, 0);
    } else {
        b.ld8(v, r, 0);
        b.free(r);
    }
}

fn aliased_use(b: &mut ProgramBuilder, bad: bool, size: i64) {
    let (p, q, sz, v) = (g(1), g(2), g(4), g(3));
    b.li(sz, size);
    b.malloc(p, sz);
    b.lea(q, p, 8); // interior alias
    if bad {
        b.free(p);
        b.ld8(v, q, 0);
    } else {
        b.ld8(v, q, 0);
        b.free(p);
    }
}

fn global_stashed(b: &mut ProgramBuilder, bad: bool, size: i64) {
    let (p, q, sz, v, t) = (g(1), g(2), g(4), g(3), g(5));
    let slot = b.global_bytes(8, 8);
    b.li(sz, size);
    b.malloc(p, sz);
    b.lea_global(t, slot);
    b.st8(p, t, 0); // stash the pointer in a global
    if bad {
        b.free(p);
        b.ld8(q, t, 0); // reload the (now dangling) pointer
        b.ld8(v, q, 0);
    } else {
        b.ld8(q, t, 0);
        b.ld8(v, q, 0);
        b.free(p);
    }
}

fn callee_use(b: &mut ProgramBuilder, bad: bool, size: i64) {
    let (p, sz, v) = (g(1), g(4), g(3));
    let func = b.label();
    let after = b.label();
    b.jmp(after);
    b.bind(func); // fn: dereference g1
    b.ld8(v, p, 0);
    b.ret();
    b.bind(after);
    b.li(sz, size);
    b.malloc(p, sz);
    if bad {
        b.free(p);
        b.call(func);
    } else {
        b.call(func);
        b.free(p);
    }
}

fn field_use(b: &mut ProgramBuilder, bad: bool, size: i64) {
    let (p, sz, v) = (g(1), g(4), g(3));
    b.li(sz, size);
    b.malloc(p, sz);
    b.li(v, 5);
    if bad {
        b.free(p);
        b.st8(v, p, 8); // struct field write
    } else {
        b.st8(v, p, 8);
        b.free(p);
    }
}

fn loop_use(b: &mut ProgramBuilder, bad: bool, size: i64) {
    // Free on one loop iteration, dereference on the other.
    let (p, sz, v, i, two) = (g(1), g(4), g(3), g(6), g(7));
    b.li(sz, size);
    b.malloc(p, sz);
    b.li(i, 0);
    b.li(two, 2);
    let top = b.here();
    let second = b.label();
    let cont = b.label();
    b.branch(Cond::Ne, i, ZERO, second);
    // Iteration 0.
    if bad {
        b.free(p);
    } else {
        b.ld8(v, p, 0);
    }
    b.jmp(cont);
    b.bind(second);
    // Iteration 1.
    if bad {
        b.ld8(v, p, 0); // use after the iteration-0 free
    } else {
        b.free(p);
    }
    b.bind(cont);
    b.addi(i, i, 1);
    b.branch(Cond::Lt, i, two, top);
}

fn conditional_free(b: &mut ProgramBuilder, bad: bool, size: i64) {
    let (p, sz, v, t) = (g(1), g(4), g(3), g(5));
    b.li(sz, size);
    b.malloc(p, sz);
    b.li(t, if bad { 1 } else { 0 });
    let skip = b.label();
    b.branch(Cond::Eq, t, ZERO, skip);
    b.free(p);
    b.bind(skip);
    b.ld8(v, p, 0); // dangling only when the condition held
    if !bad {
        b.free(p);
    }
}

fn chain_use(b: &mut ProgramBuilder, bad: bool, size: i64) {
    // a->next = node; free(node); dereference a->next.
    let (a, node, q, sz, v) = (g(1), g(2), g(7), g(4), g(3));
    b.li(sz, size);
    b.malloc(a, sz);
    b.malloc(node, sz);
    b.st8(node, a, 0); // pointer store
    if bad {
        b.free(node);
        b.ld8(q, a, 0); // reload the dangling link
        b.ld8(v, q, 0);
    } else {
        b.ld8(q, a, 0);
        b.ld8(v, q, 0);
        b.free(node);
    }
    b.free(a);
}

// ---------------------------------------------------------------------
// CWE-562 scenario bodies.
// ---------------------------------------------------------------------

/// Emits a callee that publishes an address through a global slot and
/// returns; `publish_stack` selects a frame-local (bad) or heap (good)
/// address. Returns the slot address.
fn emit_publisher(b: &mut ProgramBuilder, frame: i64, publish_stack: bool) -> u64 {
    let rsp = Gpr::RSP;
    let (q, v, t, sz) = (g(2), g(3), g(5), g(4));
    let slot = b.global_bytes(8, 8);
    let func = b.label();
    let after = b.label();
    b.jmp(after);
    b.bind(func);
    b.alui(AluOp::Sub, rsp, rsp, frame);
    b.li(v, 42);
    b.st8(v, rsp, 0); // local = 42
    if publish_stack {
        b.lea(q, rsp, 0); // &local
    } else {
        b.li(sz, frame);
        b.malloc(q, sz); // heap escape: legal
        b.st8(v, q, 0);
    }
    b.lea_global(t, slot);
    b.st8(q, t, 0); // publish
    b.alui(AluOp::Add, rsp, rsp, frame);
    b.ret();
    b.bind(after);
    b.call(func);
    slot
}

fn stack_read_after_return(b: &mut ProgramBuilder, bad: bool, size: i64) {
    let (q, v, t) = (g(2), g(3), g(5));
    let slot = emit_publisher(b, size.max(16), bad);
    b.lea_global(t, slot);
    b.ld8(q, t, 0);
    b.ld8(v, q, 0); // dangling when the published address was the local
    if !bad {
        b.free(q);
    }
}

fn stack_write_after_return(b: &mut ProgramBuilder, bad: bool, size: i64) {
    let (q, v, t) = (g(2), g(3), g(5));
    let slot = emit_publisher(b, size.max(16), bad);
    b.lea_global(t, slot);
    b.ld8(q, t, 0);
    b.li(v, 1337);
    b.st8(v, q, 0);
    if !bad {
        b.free(q);
    }
}

fn deep_stack_publish(b: &mut ProgramBuilder, bad: bool, size: i64) {
    // The publishing frame sits two calls deep.
    let rsp = Gpr::RSP;
    let (q, v, t, sz) = (g(2), g(3), g(5), g(4));
    let frame = size.max(16);
    let slot = b.global_bytes(8, 8);
    let inner = b.label();
    let outer = b.label();
    let after = b.label();
    b.jmp(after);
    b.bind(inner);
    b.alui(AluOp::Sub, rsp, rsp, frame);
    b.li(v, 9);
    b.st8(v, rsp, 0);
    if bad {
        b.lea(q, rsp, 0);
    } else {
        b.li(sz, frame);
        b.malloc(q, sz);
        b.st8(v, q, 0);
    }
    b.lea_global(t, slot);
    b.st8(q, t, 0);
    b.alui(AluOp::Add, rsp, rsp, frame);
    b.ret();
    b.bind(outer);
    b.call(inner);
    b.ret();
    b.bind(after);
    b.call(outer);
    b.lea_global(t, slot);
    b.ld8(q, t, 0);
    b.ld8(v, q, 0);
    if !bad {
        b.free(q);
    }
}

fn stack_arith_publish(b: &mut ProgramBuilder, bad: bool, size: i64) {
    // The published address is derived by pointer arithmetic inside the
    // frame.
    let rsp = Gpr::RSP;
    let (q, v, t, sz) = (g(2), g(3), g(5), g(4));
    let frame = size.max(32);
    let slot = b.global_bytes(8, 8);
    let func = b.label();
    let after = b.label();
    b.jmp(after);
    b.bind(func);
    b.alui(AluOp::Sub, rsp, rsp, frame);
    b.li(v, 3);
    b.st8(v, rsp, 16);
    if bad {
        b.lea(q, rsp, 8);
        b.addi(q, q, 8); // q = rsp + 16 via arithmetic
    } else {
        b.li(sz, frame);
        b.malloc(q, sz);
        b.st8(v, q, 16);
        b.addi(q, q, 16);
    }
    b.lea_global(t, slot);
    b.st8(q, t, 0);
    b.alui(AluOp::Add, rsp, rsp, frame);
    b.ret();
    b.bind(after);
    b.call(func);
    b.lea_global(t, slot);
    b.ld8(q, t, 0);
    b.ld8(v, q, 0);
    if !bad {
        b.addi(q, q, -16);
        b.free(q);
    }
}

// ---------------------------------------------------------------------
// Control-flow variants (the Juliet "flow variants").
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Flow {
    Plain,
    IfTrue,
    LoopOnce,
    ViaCall,
    WhileBreak,
    DoubleNegation,
    DeadCode,
    SecondIteration,
    ViaCallChain,
    BranchLadder,
}

impl Flow {
    const ALL: [Flow; 10] = [
        Flow::Plain,
        Flow::IfTrue,
        Flow::LoopOnce,
        Flow::ViaCall,
        Flow::WhileBreak,
        Flow::DoubleNegation,
        Flow::DeadCode,
        Flow::SecondIteration,
        Flow::ViaCallChain,
        Flow::BranchLadder,
    ];

    fn name(self) -> &'static str {
        match self {
            Flow::Plain => "plain",
            Flow::IfTrue => "if_true",
            Flow::LoopOnce => "loop_once",
            Flow::ViaCall => "via_call",
            Flow::WhileBreak => "while_break",
            Flow::DoubleNegation => "double_neg",
            Flow::DeadCode => "dead_code",
            Flow::SecondIteration => "second_iter",
            Flow::ViaCallChain => "via_call_chain",
            Flow::BranchLadder => "branch_ladder",
        }
    }

    /// Wraps a scenario body in this control-flow shape.
    fn wrap(self, b: &mut ProgramBuilder, body: Body, bad: bool, size: i64) {
        let t = g(11);
        match self {
            Flow::Plain => body(b, bad, size),
            Flow::IfTrue => {
                let run = b.label();
                let end = b.label();
                b.li(t, 1);
                b.branch(Cond::Ne, t, ZERO, run);
                b.jmp(end);
                b.bind(run);
                body(b, bad, size);
                b.bind(end);
            }
            Flow::LoopOnce => {
                let i = g(12);
                b.li(i, 0);
                let top = b.here();
                body(b, bad, size);
                b.addi(i, i, 1);
                b.li(t, 1);
                b.branch(Cond::Lt, i, t, top);
            }
            Flow::ViaCall => {
                let func = b.label();
                let after = b.label();
                b.call(func);
                b.jmp(after);
                b.bind(func);
                body(b, bad, size);
                b.ret();
                b.bind(after);
            }
            Flow::WhileBreak => {
                let out = b.label();
                let top = b.here();
                body(b, bad, size);
                b.jmp(out); // break
                b.jmp(top); // unreachable back-edge
                b.bind(out);
            }
            Flow::DoubleNegation => {
                let run = b.label();
                let end = b.label();
                b.li(t, 5);
                b.alu(AluOp::Sltu, t, ZERO, t); // t = !!5 = 1
                b.branch(Cond::Ne, t, ZERO, run);
                b.jmp(end);
                b.bind(run);
                body(b, bad, size);
                b.bind(end);
            }
            Flow::DeadCode => {
                body(b, bad, size);
                let end = b.label();
                b.jmp(end);
                // Unreachable garbage (never executed, never checked).
                b.li(t, -1);
                b.ld8(t, t, 0);
                b.bind(end);
            }
            Flow::SecondIteration => {
                // A two-iteration loop whose guarded body fires only on the
                // second pass (Juliet's "bug reachable on iteration N"
                // shape).
                let i = g(12);
                let skip = b.label();
                let cont = b.label();
                b.li(i, 0);
                let top = b.here();
                b.branch(Cond::Eq, i, ZERO, skip); // first pass: skip
                body(b, bad, size);
                b.jmp(cont);
                b.bind(skip);
                b.nop();
                b.bind(cont);
                b.addi(i, i, 1);
                b.li(t, 2);
                b.branch(Cond::Lt, i, t, top);
            }
            Flow::ViaCallChain => {
                // The flaw sits two calls deep.
                let outer = b.label();
                let inner = b.label();
                let after = b.label();
                b.call(outer);
                b.jmp(after);
                b.bind(outer);
                b.call(inner);
                b.ret();
                b.bind(inner);
                body(b, bad, size);
                b.ret();
                b.bind(after);
            }
            Flow::BranchLadder => {
                // A switch-like dispatch ladder selecting the flaw arm.
                let arm0 = b.label();
                let arm1 = b.label();
                let arm2 = b.label();
                let end = b.label();
                b.li(t, 2);
                let one = g(12);
                b.li(one, 0);
                b.branch(Cond::Eq, t, one, arm0);
                b.li(one, 1);
                b.branch(Cond::Eq, t, one, arm1);
                b.jmp(arm2);
                b.bind(arm0);
                b.nop(); // dead arm
                b.jmp(end);
                b.bind(arm1);
                b.nop(); // dead arm
                b.jmp(end);
                b.bind(arm2);
                body(b, bad, size);
                b.bind(end);
            }
        }
    }
}

fn scenarios() -> Vec<Scenario> {
    use Cwe::*;
    use ViolationKind::*;
    vec![
        Scenario {
            name: "read_after_free",
            cwe: Cwe416,
            expected: UseAfterFree,
            body: read_after_free,
        },
        Scenario {
            name: "write_after_free",
            cwe: Cwe416,
            expected: UseAfterFree,
            body: write_after_free,
        },
        Scenario {
            name: "use_after_realloc",
            cwe: Cwe416,
            expected: UseAfterFree,
            body: use_after_realloc,
        },
        Scenario {
            name: "aliased_use",
            cwe: Cwe416,
            expected: UseAfterFree,
            body: aliased_use,
        },
        Scenario {
            name: "global_stashed",
            cwe: Cwe416,
            expected: UseAfterFree,
            body: global_stashed,
        },
        Scenario {
            name: "callee_use",
            cwe: Cwe416,
            expected: UseAfterFree,
            body: callee_use,
        },
        Scenario {
            name: "field_use",
            cwe: Cwe416,
            expected: UseAfterFree,
            body: field_use,
        },
        Scenario {
            name: "loop_use",
            cwe: Cwe416,
            expected: UseAfterFree,
            body: loop_use,
        },
        Scenario {
            name: "conditional_free",
            cwe: Cwe416,
            expected: UseAfterFree,
            body: conditional_free,
        },
        Scenario {
            name: "chain_use",
            cwe: Cwe416,
            expected: UseAfterFree,
            body: chain_use,
        },
        Scenario {
            name: "stack_read_after_return",
            cwe: Cwe562,
            expected: UseAfterReturn,
            body: stack_read_after_return,
        },
        Scenario {
            name: "stack_write_after_return",
            cwe: Cwe562,
            expected: UseAfterReturn,
            body: stack_write_after_return,
        },
        Scenario {
            name: "deep_stack_publish",
            cwe: Cwe562,
            expected: UseAfterReturn,
            body: deep_stack_publish,
        },
        Scenario {
            name: "stack_arith_publish",
            cwe: Cwe562,
            expected: UseAfterReturn,
            body: stack_arith_publish,
        },
    ]
}

const SIZES: [i64; 3] = [16, 64, 512];

/// Number of cases in the suite (the paper's count).
pub const SUITE_SIZE: usize = 291;

fn build_case(s: &Scenario, flow: Flow, size: i64, bad: bool) -> JulietCase {
    let cwe_tag = match s.cwe {
        Cwe::Cwe416 => "CWE416",
        Cwe::Cwe562 => "CWE562",
    };
    let kind = if bad { "bad" } else { "good" };
    let name = format!("{cwe_tag}_{}__{}_{}_{}", s.name, flow.name(), size, kind);
    let mut b = ProgramBuilder::new(name.clone());
    flow.wrap(&mut b, s.body, bad, size);
    b.halt();
    let program = b.build().unwrap_or_else(|e| panic!("{name}: {e}"));
    JulietCase {
        name,
        cwe: s.cwe,
        program,
        expected: bad.then_some(s.expected),
    }
}

fn suite(bad: bool, limit: usize) -> Vec<JulietCase> {
    // Iterate (flow, size)-major so that trimming the cross product
    // (14 scenarios × 10 flows × 3 sizes = 420) down to the paper's 291
    // keeps every scenario and every flow variant represented.
    let limit = limit.min(SUITE_SIZE);
    let mut out = Vec::with_capacity(limit);
    'outer: for flow in Flow::ALL {
        for size in SIZES {
            for s in scenarios() {
                if out.len() == limit {
                    break 'outer;
                }
                out.push(build_case(&s, flow, size, bad));
            }
        }
    }
    out
}

/// The 291 *bad* cases: every one must be detected, with the expected
/// violation kind.
pub fn juliet_suite() -> Vec<JulietCase> {
    suite(true, SUITE_SIZE)
}

/// The 291 benign twins: none may trigger a violation (false-positive
/// check).
pub fn benign_suite() -> Vec<JulietCase> {
    suite(false, SUITE_SIZE)
}

/// The first `n` bad cases. Construction stops early, so runners that
/// evaluate only a prefix (fast determinism tests) do not pay for
/// building the remaining programs.
pub fn juliet_suite_prefix(n: usize) -> Vec<JulietCase> {
    suite(true, n)
}

/// The first `n` benign twins (see [`juliet_suite_prefix`]).
pub fn benign_suite_prefix(n: usize) -> Vec<JulietCase> {
    suite(false, n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use watchdog_core::machine::{Machine, MachineConfig, Step};

    fn outcome(p: &Program, cfg: MachineConfig) -> Option<ViolationKind> {
        let mut m = Machine::new(p, cfg);
        for _ in 0..1_000_000u64 {
            match m.step().expect("sim error") {
                Step::Executed(_) => {}
                Step::Halted => return None,
                Step::Violation(v) => return Some(v.kind),
            }
        }
        panic!("case did not terminate");
    }

    #[test]
    fn suite_has_exactly_291_cases() {
        assert_eq!(juliet_suite().len(), SUITE_SIZE);
        assert_eq!(benign_suite().len(), SUITE_SIZE);
    }

    #[test]
    fn names_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for c in juliet_suite().iter().chain(benign_suite().iter()) {
            assert!(seen.insert(c.name.clone()), "duplicate case {}", c.name);
        }
    }

    #[test]
    fn watchdog_detects_every_bad_case() {
        let mut cfg = MachineConfig::watchdog();
        cfg.emit_uops = false;
        for case in juliet_suite() {
            let got = outcome(&case.program, cfg.clone());
            assert_eq!(got, case.expected, "{}: wrong detection", case.name);
        }
    }

    #[test]
    fn watchdog_has_no_false_positives() {
        let mut cfg = MachineConfig::watchdog();
        cfg.emit_uops = false;
        for case in benign_suite() {
            let got = outcome(&case.program, cfg.clone());
            assert_eq!(got, None, "{}: false positive", case.name);
        }
    }

    #[test]
    fn baseline_detects_nothing() {
        let mut cfg = MachineConfig::baseline();
        cfg.emit_uops = false;
        for case in juliet_suite().iter().take(42) {
            let got = outcome(&case.program, cfg.clone());
            assert_eq!(got, None, "{}: baseline cannot detect", case.name);
        }
    }

    #[test]
    fn location_based_misses_the_realloc_cases() {
        use watchdog_core::machine::CheckMode;
        let mut cfg = MachineConfig::baseline();
        cfg.check = CheckMode::Location;
        cfg.emit_uops = false;
        let mut missed = 0;
        let mut total = 0;
        for case in juliet_suite() {
            if case.name.contains("use_after_realloc") {
                total += 1;
                if outcome(&case.program, cfg.clone()).is_none() {
                    missed += 1;
                }
            }
        }
        assert!(total > 0);
        assert_eq!(
            missed, total,
            "location-based checking is blind to reallocation ({missed}/{total})"
        );
    }

    #[test]
    fn bounds_mode_detects_everything_too() {
        // Full memory safety is a superset: every temporal attack is still
        // caught with the bounds extension enabled (§8).
        let mut cfg = MachineConfig::watchdog();
        cfg.bounds = Some(watchdog_isa::crack::BoundsUops::Fused);
        cfg.emit_uops = false;
        for case in juliet_suite().into_iter().step_by(7) {
            let got = outcome(&case.program, cfg.clone());
            assert!(
                got.is_some(),
                "{}: bounds mode must still detect",
                case.name
            );
        }
        for case in benign_suite().into_iter().step_by(7) {
            let got = outcome(&case.program, cfg.clone());
            assert_eq!(got, None, "{}: bounds-mode false positive", case.name);
        }
    }

    #[test]
    fn cases_disassemble() {
        let c = &juliet_suite()[0];
        let text = c.program.disassemble();
        assert!(text.contains("malloc"));
        assert!(text.contains("free"));
    }

    #[test]
    fn cwe_split_matches_scenarios() {
        let suite = juliet_suite();
        let n562 = suite.iter().filter(|c| c.cwe == Cwe::Cwe562).count();
        let n416 = suite.iter().filter(|c| c.cwe == Cwe::Cwe416).count();
        assert_eq!(n416 + n562, SUITE_SIZE);
        assert!(n562 >= 60, "all four CWE-562 scenarios present ({n562})");
    }
}

//! Floating-point array kernels: `lbm`, `milc`, `equake`, `art`, `mesa`,
//! `ammp`.
//!
//! These model SPEC's FP codes: large arrays streamed with FP arithmetic,
//! few or no pointer-typed memory operations. Under conservative
//! identification only their (integer) index tables are classified as
//! potential pointer operations; under ISA-assisted identification almost
//! nothing is — so they sit at the cheap end of Figs. 5 and 7.

use crate::spec::Scale;
use watchdog_isa::{AluOp, Cond, FpOp, FpWidth, Fpr, Gpr, Program, ProgramBuilder};

fn g(n: u8) -> Gpr {
    Gpr::new(n)
}

fn f(n: u8) -> Fpr {
    Fpr::new(n)
}

/// `lbm`: a 2-D Jacobi/lattice-Boltzmann-style stencil sweep over two f64
/// grids. Pure FP streaming; zero pointer operations.
pub fn lbm(scale: Scale) -> Program {
    const N: i64 = 64;
    let sweeps = scale.factor() as i64;
    let mut b = ProgramBuilder::new("lbm");
    let grid_a = b.global_bytes((N * N * 8) as u64, 8);
    let grid_b = b.global_bytes((N * N * 8) as u64, 8);
    let (src, dst, y, x, addr, t, i, s, swp) =
        (g(1), g(2), g(3), g(4), g(5), g(6), g(7), g(8), g(9));
    let (nn, one) = (g(10), g(11));
    let row = (N * 8) as i32;

    // Init: grid_a[i] = (i & 7) as f64.
    b.lea_global(src, grid_a);
    b.li(i, 0);
    b.li(nn, N * N);
    let init = b.here();
    b.alui(AluOp::And, t, i, 7);
    b.i2f(f(0), t);
    b.alui(AluOp::Shl, t, i, 3);
    b.add(addr, src, t);
    b.stf(f(0), addr, 0, FpWidth::F8);
    b.addi(i, i, 1);
    b.branch(Cond::Lt, i, nn, init);

    // Sweeps.
    b.lea_global(src, grid_a);
    b.lea_global(dst, grid_b);
    b.li(s, 0);
    b.li(one, sweeps);
    b.fli(f(4), 0.25);
    let sweep = b.here();
    b.li(y, 1);
    let yloop = b.here();
    b.li(x, 1);
    let xloop = b.here();
    // addr = src + (y*N + x)*8
    b.alui(AluOp::Shl, t, y, 6); // y*N
    b.add(t, t, x);
    b.alui(AluOp::Shl, t, t, 3);
    b.add(addr, src, t);
    b.ldf(f(0), addr, -row, FpWidth::F8);
    b.ldf(f(1), addr, row, FpWidth::F8);
    b.ldf(f(2), addr, -8, FpWidth::F8);
    b.ldf(f(3), addr, 8, FpWidth::F8);
    b.falu(FpOp::Add, f(0), f(0), f(1));
    b.falu(FpOp::Add, f(2), f(2), f(3));
    b.falu(FpOp::Add, f(0), f(0), f(2));
    b.falu(FpOp::Mul, f(0), f(0), f(4));
    b.alui(AluOp::Shl, t, y, 6);
    b.add(t, t, x);
    b.alui(AluOp::Shl, t, t, 3);
    b.add(addr, dst, t);
    b.stf(f(0), addr, 0, FpWidth::F8);
    b.addi(x, x, 1);
    b.li(t, N - 1);
    b.branch(Cond::Lt, x, t, xloop);
    b.addi(y, y, 1);
    b.branch(Cond::Lt, y, t, yloop);
    // Swap grids.
    b.mov(swp, src);
    b.mov(src, dst);
    b.mov(dst, swp);
    b.addi(s, s, 1);
    b.branch(Cond::Lt, s, one, sweep);

    // Checksum: center cell.
    b.alui(AluOp::Add, addr, src, N / 2 * N * 8 + N / 2 * 8);
    b.ldf(f(0), addr, 0, FpWidth::F8);
    b.f2i(g(0), f(0));
    b.halt();
    b.build().expect("lbm builds")
}

/// `milc`: lattice-QCD-flavoured kernel — per-site small-matrix updates
/// with a 64-bit neighbor-index table (integer words that *conservative*
/// identification must treat as pointers).
pub fn milc(scale: Scale) -> Program {
    const SITES: i64 = 2048;
    let sweeps = 2 * scale.factor() as i64;
    let mut b = ProgramBuilder::new("milc");
    super::frame(&mut b, 32);
    let lattice = b.global_bytes((SITES * 4 * 8) as u64, 8);
    let links = b.global_bytes((SITES * 4 * 8) as u64, 8);
    let nbr = b.global_bytes((SITES * 8) as u64, 8);
    let (lat, lnk, nb, i, n, t, addr, s, lim, x) =
        (g(1), g(2), g(3), g(4), g(5), g(6), g(7), g(8), g(9), g(10));

    // Init: lattice/links values and a shuffled-ish neighbor table.
    b.lea_global(lat, lattice);
    b.lea_global(lnk, links);
    b.lea_global(nb, nbr);
    b.li(i, 0);
    b.li(lim, SITES);
    b.li(x, 0x1234_5678);
    let init = b.here();
    b.alui(AluOp::And, t, i, 15);
    b.i2f(f(0), t);
    b.alui(AluOp::Shl, t, i, 5);
    b.add(addr, lat, t);
    b.stf(f(0), addr, 0, FpWidth::F8);
    b.stf(f(0), addr, 8, FpWidth::F8);
    b.stf(f(0), addr, 16, FpWidth::F8);
    b.stf(f(0), addr, 24, FpWidth::F8);
    b.add(addr, lnk, t);
    b.stf(f(0), addr, 0, FpWidth::F8);
    b.stf(f(0), addr, 8, FpWidth::F8);
    // nbr[i] = (i * 7 + 3) % SITES, a 64-bit integer word.
    super::lcg_step(&mut b, x);
    super::lcg_index(&mut b, t, x, SITES as u64);
    b.alui(AluOp::Shl, n, i, 3);
    b.add(addr, nb, n);
    b.st8(t, addr, 0);
    b.addi(i, i, 1);
    b.branch(Cond::Lt, i, lim, init);

    // Sweeps: site update with neighbor gather.
    b.li(s, 0);
    b.li(x, sweeps);
    let sweep = b.here();
    b.li(i, 0);
    let site = b.here();
    super::spill_reload(&mut b, lat, 0); // register-pressure spill
    b.alui(AluOp::Shl, t, i, 3);
    b.add(addr, nb, t);
    b.ld8(n, addr, 0); // neighbor index: 64-bit integer load
    b.alui(AluOp::Shl, n, n, 5);
    b.add(addr, lat, n);
    b.ldf(f(0), addr, 0, FpWidth::F8);
    b.ldf(f(1), addr, 8, FpWidth::F8);
    b.ldf(f(2), addr, 16, FpWidth::F8);
    b.ldf(f(3), addr, 24, FpWidth::F8);
    b.alui(AluOp::Shl, t, i, 5);
    b.add(addr, lnk, t);
    b.ldf(f(4), addr, 0, FpWidth::F8);
    b.ldf(f(5), addr, 8, FpWidth::F8);
    b.falu(FpOp::Mul, f(0), f(0), f(4));
    b.falu(FpOp::Mul, f(1), f(1), f(5));
    b.falu(FpOp::Add, f(0), f(0), f(1));
    b.falu(FpOp::Mul, f(2), f(2), f(4));
    b.falu(FpOp::Add, f(2), f(2), f(3));
    b.add(addr, lat, t);
    b.stf(f(0), addr, 0, FpWidth::F8);
    b.stf(f(2), addr, 8, FpWidth::F8);
    b.addi(i, i, 1);
    b.branch(Cond::Lt, i, lim, site);
    b.addi(s, s, 1);
    b.branch(Cond::Lt, s, x, sweep);

    b.lea_global(addr, lattice);
    b.ldf(f(0), addr, 0, FpWidth::F8);
    b.f2i(g(0), f(0));
    b.halt();
    b.build().expect("milc builds")
}

/// `equake`: sparse matrix–vector product in CSR form: 64-bit row
/// pointers, 32-bit column indices, f64 values.
pub fn equake(scale: Scale) -> Program {
    const ROWS: i64 = 512;
    const NNZ: i64 = 8; // per row
    const COLS: u64 = 2048;
    let sweeps = 2 * scale.factor() as i64;
    let mut b = ProgramBuilder::new("equake");
    super::frame(&mut b, 32);
    let rowptr = b.global_bytes(((ROWS + 1) * 8) as u64, 8);
    let colidx = b.global_bytes((ROWS * NNZ * 4) as u64, 8);
    let vals = b.global_bytes((ROWS * NNZ * 8) as u64, 8);
    let xvec = b.global_bytes(COLS * 8, 8);
    let yvec = b.global_bytes((ROWS * 8) as u64, 8);
    let (rp, ci, va, xv, yv) = (g(1), g(2), g(3), g(4), g(5));
    let (i, t, addr, r, j, e, x) = (g(6), g(7), g(8), g(9), g(10), g(11), g(12));

    b.lea_global(rp, rowptr);
    b.lea_global(ci, colidx);
    b.lea_global(va, vals);
    b.lea_global(xv, xvec);
    b.lea_global(yv, yvec);

    // Init x.
    b.li(i, 0);
    b.li(e, COLS as i64);
    let initx = b.here();
    b.alui(AluOp::And, t, i, 31);
    b.i2f(f(0), t);
    b.alui(AluOp::Shl, t, i, 3);
    b.add(addr, xv, t);
    b.stf(f(0), addr, 0, FpWidth::F8);
    b.addi(i, i, 1);
    b.branch(Cond::Lt, i, e, initx);
    // Init row pointers (64-bit ints), columns (LCG) and values.
    b.li(i, 0);
    b.li(e, ROWS + 1);
    let initrp = b.here();
    b.alui(AluOp::Mul, t, i, NNZ);
    b.alui(AluOp::Shl, j, i, 3);
    b.add(addr, rp, j);
    b.st8(t, addr, 0);
    b.addi(i, i, 1);
    b.branch(Cond::Lt, i, e, initrp);
    b.li(i, 0);
    b.li(e, ROWS * NNZ);
    b.li(x, 0xBEEF);
    let initc = b.here();
    super::lcg_step(&mut b, x);
    super::lcg_index(&mut b, t, x, COLS);
    b.alui(AluOp::Shl, j, i, 2);
    b.add(addr, ci, j);
    b.st4(t, addr, 0);
    b.alui(AluOp::And, t, i, 7);
    b.i2f(f(0), t);
    b.alui(AluOp::Shl, j, i, 3);
    b.add(addr, va, j);
    b.stf(f(0), addr, 0, FpWidth::F8);
    b.addi(i, i, 1);
    b.branch(Cond::Lt, i, e, initc);

    // Sweeps: y = A*x.
    b.li(r, 0); // reuse r as sweep counter via stack of loops
    let (s, slim) = (g(13), g(14));
    b.li(s, 0);
    b.li(slim, sweeps);
    let sweep = b.here();
    b.li(r, 0);
    b.li(e, ROWS);
    let rowl = b.here();
    super::spill_reload(&mut b, xv, 0); // register-pressure spill
    b.alui(AluOp::Shl, t, r, 3);
    b.add(addr, rp, t);
    b.ld8(i, addr, 0); // row start (64-bit int load)
    b.ld8(j, addr, 8); // row end
    b.fli(f(1), 0.0);
    let inner = b.here();
    b.alui(AluOp::Shl, t, i, 2);
    b.add(addr, ci, t);
    b.ld4(t, addr, 0); // column index (32-bit)
    b.alui(AluOp::Shl, t, t, 3);
    b.add(addr, xv, t);
    b.ldf(f(2), addr, 0, FpWidth::F8);
    b.alui(AluOp::Shl, t, i, 3);
    b.add(addr, va, t);
    b.ldf(f(3), addr, 0, FpWidth::F8);
    b.falu(FpOp::Mul, f(2), f(2), f(3));
    b.falu(FpOp::Add, f(1), f(1), f(2));
    b.addi(i, i, 1);
    b.branch(Cond::Lt, i, j, inner);
    b.alui(AluOp::Shl, t, r, 3);
    b.add(addr, yv, t);
    b.stf(f(1), addr, 0, FpWidth::F8);
    b.addi(r, r, 1);
    b.branch(Cond::Lt, r, e, rowl);
    b.addi(s, s, 1);
    b.branch(Cond::Lt, s, slim, sweep);

    b.ldf(f(0), yv, 0, FpWidth::F8);
    b.f2i(g(0), f(0));
    b.halt();
    b.build().expect("equake builds")
}

/// `art`: neural-network recognition — repeated dot products over an f64
/// weight matrix with winner tracking via FP max.
pub fn art(scale: Scale) -> Program {
    const M: i64 = 8192;
    let passes = scale.factor() as i64;
    let mut b = ProgramBuilder::new("art");
    let weights = b.global_bytes((M * 8) as u64, 8);
    let input = b.global_bytes((M * 8) as u64, 8);
    let (w, inp, i, t, addr, p, lim, plim) = (g(1), g(2), g(3), g(4), g(5), g(6), g(7), g(8));

    b.lea_global(w, weights);
    b.lea_global(inp, input);
    b.li(i, 0);
    b.li(lim, M);
    let init = b.here();
    b.alui(AluOp::And, t, i, 63);
    b.i2f(f(0), t);
    b.alui(AluOp::Shl, t, i, 3);
    b.add(addr, w, t);
    b.stf(f(0), addr, 0, FpWidth::F8);
    b.add(addr, inp, t);
    b.stf(f(0), addr, 0, FpWidth::F8);
    b.addi(i, i, 1);
    b.branch(Cond::Lt, i, lim, init);

    b.li(p, 0);
    b.li(plim, passes);
    b.fli(f(4), -1.0e30); // running max
    let pass = b.here();
    b.li(i, 0);
    b.fli(f(1), 0.0);
    let dot = b.here();
    b.alui(AluOp::Shl, t, i, 3);
    b.add(addr, w, t);
    b.ldf(f(2), addr, 0, FpWidth::F8);
    b.add(addr, inp, t);
    b.ldf(f(3), addr, 0, FpWidth::F8);
    b.falu(FpOp::Mul, f(2), f(2), f(3));
    b.falu(FpOp::Add, f(1), f(1), f(2));
    b.falu(FpOp::Max, f(4), f(4), f(2));
    b.addi(i, i, 1);
    b.branch(Cond::Lt, i, lim, dot);
    // Small weight update.
    b.alui(AluOp::And, t, p, M - 1);
    b.alui(AluOp::Shl, t, t, 3);
    b.add(addr, w, t);
    b.stf(f(1), addr, 0, FpWidth::F8);
    b.addi(p, p, 1);
    b.branch(Cond::Lt, p, plim, pass);

    b.f2i(g(0), f(4));
    b.halt();
    b.build().expect("art builds")
}

/// `mesa`: 3-D geometry pipeline — 4×4 matrix transform streamed over a
/// vertex array.
pub fn mesa(scale: Scale) -> Program {
    const V: i64 = 1024;
    let passes = scale.factor() as i64;
    let mut b = ProgramBuilder::new("mesa");
    super::frame(&mut b, 32);
    let matrix = b.global_bytes(16 * 8, 8);
    let verts = b.global_bytes((V * 4 * 8) as u64, 8);
    let out = b.global_bytes((V * 4 * 8) as u64, 8);
    let (mtx, vin, vout, i, t, addr, p, lim, plim, k) =
        (g(1), g(2), g(3), g(4), g(5), g(6), g(7), g(8), g(9), g(10));

    b.lea_global(mtx, matrix);
    b.lea_global(vin, verts);
    b.lea_global(vout, out);
    // Init matrix and vertices.
    b.li(i, 0);
    b.li(lim, 16);
    let initm = b.here();
    b.alui(AluOp::And, t, i, 3);
    b.i2f(f(0), t);
    b.alui(AluOp::Shl, t, i, 3);
    b.add(addr, mtx, t);
    b.stf(f(0), addr, 0, FpWidth::F8);
    b.addi(i, i, 1);
    b.branch(Cond::Lt, i, lim, initm);
    b.li(i, 0);
    b.li(lim, V * 4);
    let initv = b.here();
    b.alui(AluOp::And, t, i, 15);
    b.i2f(f(0), t);
    b.alui(AluOp::Shl, t, i, 3);
    b.add(addr, vin, t);
    b.stf(f(0), addr, 0, FpWidth::F8);
    b.addi(i, i, 1);
    b.branch(Cond::Lt, i, lim, initv);

    b.li(p, 0);
    b.li(plim, passes);
    let pass = b.here();
    b.li(i, 0);
    b.li(lim, V);
    let vert = b.here();
    super::spill_reload(&mut b, vin, 0); // register-pressure spill
    b.alui(AluOp::Shl, t, i, 5); // vertex offset (4 doubles)
    b.add(addr, vin, t);
    b.ldf(f(0), addr, 0, FpWidth::F8);
    b.ldf(f(1), addr, 8, FpWidth::F8);
    b.ldf(f(2), addr, 16, FpWidth::F8);
    b.ldf(f(3), addr, 24, FpWidth::F8);
    // out[k] = dot(matrix_row_k, v) for k = 0..4
    b.li(k, 0);
    let comp = b.here();
    b.alui(AluOp::Shl, t, k, 5);
    b.add(addr, mtx, t);
    b.ldf(f(4), addr, 0, FpWidth::F8);
    b.ldf(f(5), addr, 8, FpWidth::F8);
    b.ldf(f(6), addr, 16, FpWidth::F8);
    b.ldf(f(7), addr, 24, FpWidth::F8);
    b.falu(FpOp::Mul, f(4), f(4), f(0));
    b.falu(FpOp::Mul, f(5), f(5), f(1));
    b.falu(FpOp::Mul, f(6), f(6), f(2));
    b.falu(FpOp::Mul, f(7), f(7), f(3));
    b.falu(FpOp::Add, f(4), f(4), f(5));
    b.falu(FpOp::Add, f(6), f(6), f(7));
    b.falu(FpOp::Add, f(4), f(4), f(6));
    b.alui(AluOp::Shl, t, i, 5);
    b.add(addr, vout, t);
    b.alui(AluOp::Shl, t, k, 3);
    b.add(addr, addr, t);
    b.stf(f(4), addr, 0, FpWidth::F8);
    b.addi(k, k, 1);
    b.li(t, 4);
    b.branch(Cond::Lt, k, t, comp);
    b.addi(i, i, 1);
    b.branch(Cond::Lt, i, lim, vert);
    b.addi(p, p, 1);
    b.branch(Cond::Lt, p, plim, pass);

    b.ldf(f(0), vout, 0, FpWidth::F8);
    b.f2i(g(0), f(0));
    b.halt();
    b.build().expect("mesa builds")
}

/// `ammp`: molecular dynamics over heap-allocated atoms linked in a chain —
/// FP force computation with one *real* pointer load per atom (the
/// ISA-assisted case keeps exactly these).
pub fn ammp(scale: Scale) -> Program {
    const ATOMS: i64 = 1024;
    let sweeps = 2 * scale.factor() as i64;
    let mut b = ProgramBuilder::new("ammp");
    let (head, cur, nxt, sz, i, lim, t) = (g(1), g(2), g(3), g(4), g(5), g(6), g(7));
    let (s, slim, zero) = (g(8), g(9), g(13));

    // Build the atom chain: [next:8][id:8][x:8][y:8][z:8][vx:8][vy:8][vz:8].
    b.li(sz, 64);
    b.li(head, 0);
    b.li(i, 0);
    b.li(lim, ATOMS);
    let build = b.here();
    b.malloc(nxt, sz);
    b.st8(head, nxt, 0); // next = old head (pointer store)
    b.st8(i, nxt, 8);
    b.alui(AluOp::And, t, i, 31);
    b.i2f(f(0), t);
    b.stf(f(0), nxt, 16, FpWidth::F8);
    b.stf(f(0), nxt, 24, FpWidth::F8);
    b.stf(f(0), nxt, 32, FpWidth::F8);
    b.mov(head, nxt);
    b.addi(i, i, 1);
    b.branch(Cond::Lt, i, lim, build);

    // Force sweeps: chase the chain.
    b.li(s, 0);
    b.li(slim, sweeps);
    b.fli(f(5), 0.5);
    b.fli(f(6), 0.01);
    let sweep = b.here();
    b.mov(cur, head);
    let atom = b.here();
    b.ld8(nxt, cur, 0); // pointer load (real pointer)
    b.ldf(f(0), cur, 16, FpWidth::F8);
    b.ldf(f(1), cur, 24, FpWidth::F8);
    b.ldf(f(2), cur, 32, FpWidth::F8);
    b.falu(FpOp::Mul, f(3), f(0), f(5));
    b.falu(FpOp::Add, f(3), f(3), f(1));
    b.falu(FpOp::Mul, f(4), f(2), f(6));
    b.falu(FpOp::Add, f(3), f(3), f(4));
    b.stf(f(3), cur, 40, FpWidth::F8);
    b.falu(FpOp::Add, f(0), f(0), f(6));
    b.stf(f(0), cur, 16, FpWidth::F8);
    b.mov(cur, nxt);
    b.branch(Cond::Ne, cur, zero, atom);
    b.addi(s, s, 1);
    b.branch(Cond::Lt, s, slim, sweep);

    // Checksum, then free the chain.
    b.ldf(f(0), head, 16, FpWidth::F8);
    b.f2i(g(0), f(0));
    b.mov(cur, head);
    let freel = b.here();
    b.ld8(nxt, cur, 0);
    b.free(cur);
    b.mov(cur, nxt);
    b.branch(Cond::Ne, cur, zero, freel);
    b.halt();
    b.build().expect("ammp builds")
}

//! The twenty SPEC-lookalike kernels.
//!
//! Grouped by behavioural family:
//!
//! * [`fp`] — floating-point array codes (`lbm`, `milc`, `equake`, `art`,
//!   `mesa`, `ammp`): few or no pointer operations, so Watchdog's metadata
//!   machinery is nearly idle and overhead should be small (the left end of
//!   Fig. 7).
//! * [`int`] — integer compute (`compress`, `gzip`, `bzip2`, `hmmer`,
//!   `ijpeg`, `h264`, `sjeng`, `go`, `gobmk`): word-sized integer traffic
//!   that *conservative* identification must treat as potential pointers
//!   but ISA-assisted identification filters out — the gap between the bar
//!   pairs of Fig. 5.
//! * [`ptr`] — pointer-chasing and allocation-intensive codes (`mcf`,
//!   `twolf`, `vpr`, `gcc`, `perl`): real pointer loads/stores, heavy
//!   malloc/free, the expensive right end of every figure.
//!
//! All kernels are deterministic (guest-side LCG for pseudo-randomness),
//! run clean under every checking mode, and leave a checksum in `r0` so
//! tests can verify architectural equivalence across modes.

pub mod fp;
pub mod int;
pub mod ptr;

use watchdog_isa::{AluOp, Gpr, ProgramBuilder};

/// Emits one LCG step: `x = x * 6364136223846793005 + 1442695040888963407`.
///
/// The multiply is a long-latency µop whose result is never treated as a
/// pointer (metadata invalidated), matching how hashed values behave in
/// real code.
pub(crate) fn lcg_step(b: &mut ProgramBuilder, x: Gpr) {
    b.alui(AluOp::Mul, x, x, 6364136223846793005u64 as i64);
    b.alui(AluOp::Add, x, x, 1442695040888963407);
}

/// Emits `dst = (x >> 33) % modulus` for an LCG-derived index (modulus a
/// power of two).
pub(crate) fn lcg_index(b: &mut ProgramBuilder, dst: Gpr, x: Gpr, modulus: u64) {
    debug_assert!(modulus.is_power_of_two());
    b.alui(AluOp::Shr, dst, x, 33);
    b.alui(AluOp::And, dst, dst, (modulus - 1) as i64);
}

/// Emits a register spill + reload of a pointer through the stack frame —
/// the pattern compilers generate under register pressure. Both halves are
/// genuine pointer operations, so they are classified by *both*
/// identification policies (they are what keeps the ISA-assisted
/// percentages of Fig. 5 non-zero even in integer codes).
pub(crate) fn spill_reload(b: &mut ProgramBuilder, ptr: Gpr, slot: i32) {
    b.st8(ptr, Gpr::RSP, slot);
    b.ld8(ptr, Gpr::RSP, slot);
}

/// Emits a stack-frame prologue reserving `bytes` for spill slots.
pub(crate) fn frame(b: &mut ProgramBuilder, bytes: i64) {
    b.alui(AluOp::Sub, Gpr::RSP, Gpr::RSP, bytes);
}

#[cfg(test)]
mod tests {
    use crate::spec::{all_benchmarks, Scale};
    use watchdog_core::machine::{Machine, MachineConfig, Step};

    /// Runs a program functionally to completion; returns (checksum in r0,
    /// instruction count, violation?).
    fn run(p: &watchdog_isa::Program, cfg: MachineConfig) -> (u64, u64, bool) {
        let mut m = Machine::new(p, cfg);
        loop {
            match m.step().expect("sim error") {
                Step::Executed(_) => {}
                Step::Halted => return (m.reg(watchdog_isa::Gpr::new(0)), m.stats().insts, false),
                Step::Violation(v) => panic!("kernel violated memory safety: {v}"),
            }
        }
    }

    #[test]
    fn all_kernels_run_clean_under_watchdog_and_match_baseline() {
        for spec in all_benchmarks() {
            let p = spec.build(Scale::Test);
            let mut base = MachineConfig::baseline();
            base.emit_uops = false;
            let mut wd = MachineConfig::watchdog();
            wd.emit_uops = false;
            let (sum_b, insts_b, _) = run(&p, base);
            let (sum_w, insts_w, _) = run(&p, wd);
            assert_eq!(sum_b, sum_w, "{}: checksum differs across modes", spec.name);
            assert_eq!(insts_b, insts_w, "{}: instruction count differs", spec.name);
            assert!(
                insts_b > 3_000,
                "{}: too small ({insts_b} insts)",
                spec.name
            );
            assert!(
                insts_b < 3_000_000,
                "{}: too large at Test scale ({insts_b})",
                spec.name
            );
        }
    }

    #[test]
    fn kernels_are_deterministic() {
        for name in ["mcf", "lbm", "perl"] {
            let spec = crate::spec::benchmark(name).unwrap();
            let p1 = spec.build(Scale::Test);
            let p2 = spec.build(Scale::Test);
            let mut cfg = MachineConfig::baseline();
            cfg.emit_uops = false;
            let (a, _, _) = run(&p1, cfg.clone());
            let (b, _, _) = run(&p2, cfg);
            assert_eq!(a, b, "{name} not deterministic");
        }
    }

    #[test]
    fn scales_change_instruction_counts() {
        let spec = crate::spec::benchmark("hmmer").unwrap();
        let mut cfg = MachineConfig::baseline();
        cfg.emit_uops = false;
        let (_, small, _) = run(&spec.build(Scale::Test), cfg.clone());
        let (_, big, _) = run(&spec.build(Scale::Small), cfg);
        assert!(
            big > small * 2,
            "Small scale must be meaningfully larger ({small} vs {big})"
        );
    }
}

//! Pointer-chasing and allocation-intensive kernels: `mcf`, `twolf`,
//! `vpr`, `gcc`, `perl`.
//!
//! These model SPEC's pointer codes: graph traversal over heap-allocated
//! nodes, placement with object churn, tree building/tearing with deep
//! recursion, and chained hash tables. They move *real* pointers through
//! memory constantly, so both identification policies classify a large
//! fraction of their accesses as pointer operations — the expensive right
//! end of Figs. 5, 7 and 10. `gcc` and `perl` additionally stress the
//! allocation path (identifier allocation, lock-location recycling) and
//! the stack-frame identifier µops via deep recursion.

use crate::spec::Scale;
use watchdog_isa::{AluOp, Cond, Gpr, Program, ProgramBuilder};

fn g(n: u8) -> Gpr {
    Gpr::new(n)
}

/// `mcf`: network-simplex-flavoured kernel — a node chain plus an arc
/// array of node *pointers*, chased and updated every sweep.
pub fn mcf(scale: Scale) -> Program {
    const NODES: i64 = 1024;
    const ARCS: i64 = 2048;
    let sweeps = 2 * scale.factor() as i64;
    let mut b = ProgramBuilder::new("mcf");
    // Node: [next:8][val:8][cost:8][pad:8]
    let (head, cur, nxt, sz, i, lim, t, addr, ntab, arcs, x, s) = (
        g(1),
        g(2),
        g(3),
        g(4),
        g(5),
        g(6),
        g(7),
        g(8),
        g(9),
        g(10),
        g(11),
        g(12),
    );
    let zero = g(13);

    // node-pointer table and arc array live on the heap.
    b.li(sz, NODES * 8);
    b.malloc(ntab, sz);
    b.li(sz, ARCS * 8);
    b.malloc(arcs, sz);
    // Build the node chain, recording each node's pointer in ntab.
    b.li(sz, 32);
    b.li(head, 0);
    b.li(i, 0);
    b.li(lim, NODES);
    let build = b.here();
    b.malloc(nxt, sz);
    b.st8(head, nxt, 0); // next (pointer store)
    b.st8(i, nxt, 8); // val
    b.alui(AluOp::Mul, t, i, 3);
    b.alui(AluOp::And, t, t, 255);
    b.st4(t, nxt, 16); // cost (32-bit, like mcf's int fields)
    b.alui(AluOp::Shl, t, i, 3);
    b.add(addr, ntab, t);
    b.st8(nxt, addr, 0); // node table (pointer store)
    b.mov(head, nxt);
    b.addi(i, i, 1);
    b.branch(Cond::Lt, i, lim, build);
    // Arcs: random node pointers.
    b.li(i, 0);
    b.li(lim, ARCS);
    b.li(x, 0x3C0F);
    let arcinit = b.here();
    super::lcg_step(&mut b, x);
    super::lcg_index(&mut b, t, x, NODES as u64);
    b.alui(AluOp::Shl, t, t, 3);
    b.add(addr, ntab, t);
    b.ld8(cur, addr, 0); // node pointer load
    b.alui(AluOp::Shl, t, i, 3);
    b.add(addr, arcs, t);
    b.st8(cur, addr, 0); // arc: pointer store
    b.addi(i, i, 1);
    b.branch(Cond::Lt, i, lim, arcinit);

    // Sweeps: arc scan (pointer loads) + chain chase.
    b.li(s, 0);
    b.li(g(14), sweeps);
    let sweep = b.here();
    b.li(i, 0);
    b.li(lim, ARCS);
    let arcl = b.here();
    b.alui(AluOp::Shl, t, i, 3);
    b.add(addr, arcs, t);
    b.ld8(cur, addr, 0); // pointer load
    b.ld8(t, cur, 8); // val
    b.ld4(nxt, cur, 16); // cost (32-bit)
    b.add(t, t, nxt);
    b.st8(t, cur, 8);
    b.addi(i, i, 1);
    b.branch(Cond::Lt, i, lim, arcl);
    // Chain chase.
    b.mov(cur, head);
    let chase = b.here();
    b.ld8(t, cur, 8);
    b.add(g(0), g(0), t);
    b.ld8(cur, cur, 0); // pointer chase
    b.branch(Cond::Ne, cur, zero, chase);
    b.addi(s, s, 1);
    b.branch(Cond::Lt, s, g(14), sweep);

    // Teardown.
    b.mov(cur, head);
    let fr = b.here();
    b.ld8(nxt, cur, 0);
    b.free(cur);
    b.mov(cur, nxt);
    b.branch(Cond::Ne, cur, zero, fr);
    b.free(ntab);
    b.free(arcs);
    b.alui(AluOp::And, g(0), g(0), 0xFFFF_FFFF);
    b.halt();
    b.build().expect("mcf builds")
}

/// `twolf`: standard-cell placement — heap cell structs, random pairwise
/// swap attempts, periodic object churn (free + realloc).
pub fn twolf(scale: Scale) -> Program {
    const CELLS: i64 = 1024;
    let iters = 1000 * scale.factor() as i64;
    let mut b = ProgramBuilder::new("twolf");
    // Cell: [x:4][y:4][score:8][spare:16]
    let (tab, c1, c2, sz, i, lim, t, addr, x, xa, ya, xb) = (
        g(1),
        g(2),
        g(3),
        g(4),
        g(5),
        g(6),
        g(7),
        g(8),
        g(9),
        g(10),
        g(11),
        g(12),
    );

    b.li(sz, CELLS * 8);
    b.malloc(tab, sz);
    b.li(sz, 32);
    b.li(i, 0);
    b.li(lim, CELLS);
    let build = b.here();
    b.malloc(c1, sz);
    b.alui(AluOp::Mul, t, i, 7);
    b.alui(AluOp::And, t, t, 1023);
    b.st4(t, c1, 0); // x
    b.alui(AluOp::Mul, t, i, 13);
    b.alui(AluOp::And, t, t, 1023);
    b.st4(t, c1, 4); // y
    b.st8(i, c1, 8); // score
    b.alui(AluOp::Shl, t, i, 3);
    b.add(addr, tab, t);
    b.st8(c1, addr, 0); // cell table (pointer store)
    b.addi(i, i, 1);
    b.branch(Cond::Lt, i, lim, build);

    b.li(i, 0);
    b.li(lim, iters);
    b.li(x, 0x70_1F);
    let iter = b.here();
    // Pick two random cells.
    super::lcg_step(&mut b, x);
    super::lcg_index(&mut b, t, x, CELLS as u64);
    b.alui(AluOp::Shl, t, t, 3);
    b.add(addr, tab, t);
    b.ld8(c1, addr, 0); // pointer load
    super::lcg_step(&mut b, x);
    super::lcg_index(&mut b, t, x, CELLS as u64);
    b.alui(AluOp::Shl, t, t, 3);
    b.add(addr, tab, t);
    b.ld8(c2, addr, 0); // pointer load

    // Swap coordinates if it "improves" the layout (xa+yb < xb+ya).
    b.ld4(xa, c1, 0);
    b.ld4(ya, c1, 4);
    b.ld4(xb, c2, 0);
    let noswap = b.label();
    b.alu(AluOp::Add, t, xa, xb);
    b.alui(AluOp::And, t, t, 1);
    b.branch(Cond::Eq, t, g(13), noswap);
    b.st4(xb, c1, 0);
    b.st4(xa, c2, 0);
    b.bind(noswap);
    // Update scores (64-bit words).
    b.ld8(t, c1, 8);
    b.add(t, t, xa);
    b.st8(t, c1, 8);
    // Every 64th iteration: churn — free one cell and reallocate it.
    let nochurn = b.label();
    b.alui(AluOp::And, t, i, 63);
    b.branch(Cond::Ne, t, g(13), nochurn);
    super::lcg_step(&mut b, x);
    super::lcg_index(&mut b, t, x, CELLS as u64);
    b.alui(AluOp::Shl, t, t, 3);
    b.add(addr, tab, t);
    b.ld8(c1, addr, 0);
    b.free(c1);
    b.li(sz, 32);
    b.malloc(c1, sz);
    b.st4(i, c1, 0);
    b.st8(i, c1, 8);
    b.st8(c1, addr, 0); // fresh pointer replaces the stale one
    b.bind(nochurn);
    b.addi(i, i, 1);
    b.branch(Cond::Lt, i, lim, iter);

    // Checksum then teardown.
    b.ld8(c1, tab, 0);
    b.ld8(g(0), c1, 8);
    b.li(i, 0);
    b.li(lim, CELLS);
    let fr = b.here();
    b.alui(AluOp::Shl, t, i, 3);
    b.add(addr, tab, t);
    b.ld8(c1, addr, 0);
    b.free(c1);
    b.addi(i, i, 1);
    b.branch(Cond::Lt, i, lim, fr);
    b.free(tab);
    b.alui(AluOp::And, g(0), g(0), 0xFFFF_FFFF);
    b.halt();
    b.build().expect("twolf builds")
}

/// `vpr`: routing-cost relaxation over an adjacency array of node
/// pointers.
pub fn vpr(scale: Scale) -> Program {
    const V: i64 = 1024;
    const DEG: i64 = 4;
    let sweeps = 2 * scale.factor() as i64;
    let mut b = ProgramBuilder::new("vpr");
    // Node: [cost:4][est:4][pad:8]; adjacency: V*DEG node pointers.
    let (ntab, adj, n, m, sz, i, k, lim, t, addr, x, s) = (
        g(1),
        g(2),
        g(3),
        g(4),
        g(5),
        g(6),
        g(7),
        g(8),
        g(9),
        g(10),
        g(11),
        g(12),
    );

    b.li(sz, V * 8);
    b.malloc(ntab, sz);
    b.li(sz, V * DEG * 8);
    b.malloc(adj, sz);
    b.li(sz, 16);
    b.li(i, 0);
    b.li(lim, V);
    let build = b.here();
    b.malloc(n, sz);
    b.alui(AluOp::Mul, t, i, 37);
    b.alui(AluOp::And, t, t, 4095);
    b.st4(t, n, 0);
    b.st4(t, n, 4);
    b.alui(AluOp::Shl, t, i, 3);
    b.add(addr, ntab, t);
    b.st8(n, addr, 0);
    b.addi(i, i, 1);
    b.branch(Cond::Lt, i, lim, build);
    // Adjacency.
    b.li(i, 0);
    b.li(lim, V * DEG);
    b.li(x, 0xF00D);
    let ainit = b.here();
    super::lcg_step(&mut b, x);
    super::lcg_index(&mut b, t, x, V as u64);
    b.alui(AluOp::Shl, t, t, 3);
    b.add(addr, ntab, t);
    b.ld8(n, addr, 0);
    b.alui(AluOp::Shl, t, i, 3);
    b.add(addr, adj, t);
    b.st8(n, addr, 0);
    b.addi(i, i, 1);
    b.branch(Cond::Lt, i, lim, ainit);

    // Relaxation sweeps.
    b.li(s, 0);
    b.li(g(14), sweeps);
    let sweep = b.here();
    b.li(i, 0);
    b.li(lim, V);
    let node = b.here();
    b.alui(AluOp::Shl, t, i, 3);
    b.add(addr, ntab, t);
    b.ld8(n, addr, 0); // node pointer
    b.ld4(x, n, 0); // own cost
    b.li(k, 0);
    let edge = b.here();
    b.alui(AluOp::Mul, t, i, DEG);
    b.add(t, t, k);
    b.alui(AluOp::Shl, t, t, 3);
    b.add(addr, adj, t);
    b.ld8(m, addr, 0); // neighbour pointer
    b.ld4(t, m, 0);
    b.addi(t, t, 1);
    // x = min(x, t), branchless.
    b.alu(AluOp::Slt, addr, t, x);
    b.alu(AluOp::Sub, addr, g(13), addr);
    b.alu(AluOp::Sub, t, t, x);
    b.alu(AluOp::And, t, t, addr);
    b.alu(AluOp::Add, x, x, t);
    b.addi(k, k, 1);
    b.li(t, DEG);
    b.branch(Cond::Lt, k, t, edge);
    b.st4(x, n, 0);
    b.addi(i, i, 1);
    b.branch(Cond::Lt, i, lim, node);
    b.addi(s, s, 1);
    b.branch(Cond::Lt, s, g(14), sweep);

    b.ld8(n, ntab, 0);
    b.ld4(g(0), n, 0);
    // Teardown.
    b.li(i, 0);
    b.li(lim, V);
    let fr = b.here();
    b.alui(AluOp::Shl, t, i, 3);
    b.add(addr, ntab, t);
    b.ld8(n, addr, 0);
    b.free(n);
    b.addi(i, i, 1);
    b.branch(Cond::Lt, i, lim, fr);
    b.free(ntab);
    b.free(adj);
    b.halt();
    b.build().expect("vpr builds")
}

/// `gcc`: AST-like binary-tree build / recursive traversal / teardown,
/// repeated — allocation-intensive with deep call recursion (heavy on both
/// heap-identifier work and the Fig. 3c/3d stack-frame µops).
pub fn gcc(scale: Scale) -> Program {
    const KEYS: i64 = 400;
    let rounds = scale.factor() as i64;
    let mut b = ProgramBuilder::new("gcc");
    // Node: [left:8][right:8][key:8][pad:8]
    let (root, cur, node, sz, i, t, x, stk, sp, r) =
        (g(1), g(2), g(3), g(4), g(5), g(7), g(8), g(9), g(10), g(11));
    let (zero, acc) = (g(13), g(6)); // g6 is free outside the build loops
    let rsp = Gpr::RSP;

    let sum_fn = b.label();
    let main_done = b.label();
    let round_top = b.label();

    // ---- main ----
    b.li(sz, KEYS * 8);
    b.malloc(stk, sz); // explicit stack for teardown
    b.li(r, 0);
    b.bind(round_top);
    // Build a BST of KEYS nodes with LCG keys.
    b.li(sz, 32);
    b.malloc(root, sz);
    b.st8(zero, root, 0);
    b.st8(zero, root, 8);
    b.li(t, 500);
    b.st8(t, root, 16);
    b.li(i, 1);
    b.li(g(12), KEYS);
    b.li(x, 0x5CA1E);
    let insert = b.here();
    super::lcg_step(&mut b, x);
    super::lcg_index(&mut b, t, x, 1024);
    b.malloc(node, sz);
    b.st8(zero, node, 0);
    b.st8(zero, node, 8);
    b.st8(t, node, 16);
    // Chase from the root to a leaf.
    b.mov(cur, root);
    let descend = b.here();
    let go_right = b.label();
    let attach_l = b.label();
    let attach_r = b.label();
    let attached = b.label();
    b.ld8(g(14), cur, 16); // cur->key
    b.branch(Cond::Geu, t, g(14), go_right);
    b.ld8(g(14), cur, 0); // left child (pointer load)
    b.branch(Cond::Eq, g(14), zero, attach_l);
    b.mov(cur, g(14));
    b.jmp(descend);
    b.bind(go_right);
    b.ld8(g(14), cur, 8); // right child
    b.branch(Cond::Eq, g(14), zero, attach_r);
    b.mov(cur, g(14));
    b.jmp(descend);
    b.bind(attach_l);
    b.st8(node, cur, 0); // pointer store
    b.jmp(attached);
    b.bind(attach_r);
    b.st8(node, cur, 8);
    b.bind(attached);
    b.addi(i, i, 1);
    b.branch(Cond::Lt, i, g(12), insert);

    // Recursive sum (arg in g5/cur → use g5 = i? g5 is `i`; pass in g2=cur).
    b.li(acc, 0);
    b.mov(cur, root);
    b.call(sum_fn);
    b.add(g(0), g(0), acc);

    // Teardown with an explicit pointer stack.
    b.st8(root, stk, 0);
    b.li(sp, 1);
    let pop = b.here();
    let done_free = b.label();
    b.branch(Cond::Eq, sp, zero, done_free);
    b.addi(sp, sp, -1);
    b.alui(AluOp::Shl, t, sp, 3);
    b.add(g(12), stk, t);
    b.ld8(node, g(12), 0); // pop (pointer load)
    for off in [0i32, 8] {
        let skip = b.label();
        b.ld8(cur, node, off);
        b.branch(Cond::Eq, cur, zero, skip);
        b.alui(AluOp::Shl, t, sp, 3);
        b.add(g(12), stk, t);
        b.st8(cur, g(12), 0); // push child
        b.addi(sp, sp, 1);
        b.bind(skip);
    }
    b.free(node);
    b.jmp(pop);
    b.bind(done_free);
    b.addi(r, r, 1);
    b.li(t, rounds);
    b.branch(Cond::Lt, r, t, round_top);
    b.free(stk);
    b.alui(AluOp::And, g(0), g(0), 0xFFFF_FFFF);
    b.jmp(main_done);

    // ---- fn sum(cur=g2): acc(g6) += subtree keys; clobbers g2, g14 ----
    b.bind(sum_fn);
    b.alui(AluOp::Sub, rsp, rsp, 16);
    b.st8(cur, rsp, 0); // save node (pointer store to stack)
    b.ld8(g(14), cur, 16);
    b.add(acc, acc, g(14));
    b.ld8(cur, cur, 0); // left
    let no_left = b.label();
    b.branch(Cond::Eq, cur, zero, no_left);
    b.call(sum_fn);
    b.bind(no_left);
    b.ld8(g(14), rsp, 0); // restore node (pointer load from stack)
    b.ld8(cur, g(14), 8); // right
    let no_right = b.label();
    b.branch(Cond::Eq, cur, zero, no_right);
    b.call(sum_fn);
    b.bind(no_right);
    b.alui(AluOp::Add, rsp, rsp, 16);
    b.ret();

    b.bind(main_done);
    b.halt();
    b.build().expect("gcc builds")
}

/// `perl`: chained hash table — byte-string hashing, bucket chains of
/// heap nodes, mixed insert/lookup/delete with live churn.
pub fn perl(scale: Scale) -> Program {
    const BUCKETS: u64 = 512;
    let ops = 1200 * scale.factor() as i64;
    let mut b = ProgramBuilder::new("perl");
    let blob = b.global_bytes(256, 8);
    // Node: [next:8][key:8][val:8][pad:8]
    let (tab, node, cur, prev, sz, i, lim, t, addr, x, h, key) = (
        g(1),
        g(2),
        g(3),
        g(4),
        g(5),
        g(6),
        g(7),
        g(8),
        g(9),
        g(10),
        g(11),
        g(12),
    );
    let zero = g(13);

    // Init the string blob.
    b.lea_global(addr, blob);
    b.li(i, 0);
    b.li(lim, 256);
    b.li(x, 0x9E37);
    let initb = b.here();
    super::lcg_step(&mut b, x);
    b.alui(AluOp::Shr, t, x, 50);
    b.add(h, addr, i);
    b.st1(t, h, 0);
    b.addi(i, i, 1);
    b.branch(Cond::Lt, i, lim, initb);

    b.li(sz, (BUCKETS * 8) as i64);
    b.malloc(tab, sz);
    b.li(i, 0);
    b.li(lim, ops);
    b.li(x, 0xCAFE);
    let op = b.here();
    // "String" hash: 4 byte loads from the blob mixed into an LCG key.
    super::lcg_step(&mut b, x);
    b.alui(AluOp::Shr, key, x, 40);
    b.lea_global(addr, blob);
    b.alui(AluOp::And, t, key, 255);
    b.add(t, addr, t);
    b.ld1(h, t, 0);
    b.ld1(g(14), t, 1);
    b.alui(AluOp::Shl, h, h, 8);
    b.alu(AluOp::Or, h, h, g(14));
    b.alu(AluOp::Xor, key, key, h);
    b.alui(AluOp::And, h, key, (BUCKETS - 1) as i64);
    b.alui(AluOp::Shl, h, h, 3);
    b.add(addr, tab, h); // &bucket

    // Dispatch on key bits: 0 = insert, 1 = lookup, 2..3 = lookup+delete.
    b.alui(AluOp::Shr, t, key, 9);
    b.alui(AluOp::And, t, t, 3);
    let do_lookup = b.label();
    let do_delete = b.label();
    let next_op = b.label();
    b.branch(Cond::Eq, t, zero, do_delete);
    b.li(g(14), 1);
    b.branch(Cond::Geu, t, g(14), do_lookup);
    b.bind(do_lookup);
    {
        // Walk the chain comparing keys.
        b.ld8(cur, addr, 0); // bucket head (pointer load)
        let walk = b.here();
        let found = b.label();
        b.branch(Cond::Eq, cur, zero, next_op);
        b.ld8(t, cur, 8);
        b.branch(Cond::Eq, t, key, found);
        b.ld8(cur, cur, 0); // chain chase
        b.jmp(walk);
        b.bind(found);
        b.ld8(t, cur, 16);
        b.add(g(0), g(0), t);
        b.jmp(next_op);
    }
    b.bind(do_delete);
    {
        // Insert, and if the chain grows beyond 2, delete from the head.
        b.li(sz, 32);
        b.malloc(node, sz);
        b.ld8(cur, addr, 0);
        b.st8(cur, node, 0); // node->next = head
        b.st8(key, node, 8);
        b.st8(i, node, 16);
        b.st8(node, addr, 0); // head = node

        // Count two links; delete the third if present.
        b.ld8(cur, addr, 0);
        b.ld8(prev, cur, 0);
        let short_chain = b.label();
        b.branch(Cond::Eq, prev, zero, short_chain);
        b.ld8(t, prev, 0);
        b.branch(Cond::Eq, t, zero, short_chain);
        // unlink t from prev, free it
        b.ld8(g(14), t, 0);
        b.st8(g(14), prev, 0);
        b.free(t);
        b.bind(short_chain);
    }
    b.bind(next_op);
    b.addi(i, i, 1);
    b.branch(Cond::Lt, i, lim, op);

    // Teardown: free every chain.
    b.li(i, 0);
    b.li(lim, BUCKETS as i64);
    let bl = b.here();
    b.alui(AluOp::Shl, t, i, 3);
    b.add(addr, tab, t);
    b.ld8(cur, addr, 0);
    let chain = b.here();
    let empty = b.label();
    b.branch(Cond::Eq, cur, zero, empty);
    b.ld8(node, cur, 0);
    b.free(cur);
    b.mov(cur, node);
    b.jmp(chain);
    b.bind(empty);
    b.addi(i, i, 1);
    b.branch(Cond::Lt, i, lim, bl);
    b.free(tab);
    b.alui(AluOp::And, g(0), g(0), 0xFFFF_FFFF);
    b.halt();
    b.build().expect("perl builds")
}

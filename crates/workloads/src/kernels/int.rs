//! Integer-compute kernels: `compress`, `gzip`, `bzip2`, `hmmer`, `ijpeg`,
//! `h264`, `sjeng`, `go`, `gobmk`.
//!
//! These model SPEC's integer codes: table-driven compression, sorting,
//! dynamic programming and game-tree evaluation. Their 64-bit integer
//! table entries (hash heads, counters, piece lists) are exactly the
//! traffic that *conservative* pointer identification must classify as
//! potential pointers but ISA-assisted identification filters out — the
//! bar-pair gap of Fig. 5. `hmmer` and `h264` are built branchless and
//! memory-dense, reproducing their role as the benchmarks that suffer most
//! without the lock-location cache (Fig. 9).

use crate::spec::Scale;
use watchdog_isa::{AluOp, Cond, Gpr, Program, ProgramBuilder};

fn g(n: u8) -> Gpr {
    Gpr::new(n)
}

/// Emits branchless `a = max(a, b)` using a sign mask (no mispredicts —
/// keeps IPC high).
fn emit_max(b: &mut ProgramBuilder, a: Gpr, bb: Gpr, t1: Gpr, t2: Gpr) {
    b.alu(AluOp::Sub, t1, bb, a); // t1 = b - a
    b.alu(AluOp::Slt, t2, a, bb); // t2 = (a < b)
    b.li(g(14), 0);
    b.alu(AluOp::Sub, t2, g(14), t2); // mask = 0 or -1
    b.alu(AluOp::And, t1, t1, t2);
    b.alu(AluOp::Add, a, a, t1);
}

/// `compress`: LZW-style coder — byte input stream, 64-bit code table
/// probes, code emission.
pub fn compress(scale: Scale) -> Program {
    const INPUT: i64 = 8192;
    const TABLE: u64 = 32768;
    let passes = scale.factor() as i64;
    let mut b = ProgramBuilder::new("comp");
    super::frame(&mut b, 32);
    let input = b.global_bytes(INPUT as u64, 8);
    let table = b.global_bytes(TABLE * 8, 8);
    let output = b.global_bytes(INPUT as u64 * 8, 8);
    let (inp, tab, out, i, lim, byte, code, h, addr, t, p, plim, sum) = (
        g(1),
        g(2),
        g(3),
        g(4),
        g(5),
        g(6),
        g(7),
        g(8),
        g(9),
        g(10),
        g(11),
        g(12),
        g(0),
    );

    b.lea_global(inp, input);
    b.lea_global(tab, table);
    b.lea_global(out, output);
    // Init input bytes from an LCG.
    b.li(i, 0);
    b.li(lim, INPUT);
    b.li(t, 0xACE1);
    let init = b.here();
    super::lcg_step(&mut b, t);
    b.alui(AluOp::Shr, byte, t, 40);
    b.add(addr, inp, i);
    b.st1(byte, addr, 0);
    b.addi(i, i, 1);
    b.branch(Cond::Lt, i, lim, init);

    b.li(sum, 0);
    b.li(p, 0);
    b.li(plim, passes);
    let pass = b.here();
    b.li(i, 0);
    b.li(code, 0);
    let lp = b.here();
    b.add(addr, inp, i);
    b.ld1(byte, addr, 0);
    // code = hash(code, byte)
    b.alui(AluOp::Shl, code, code, 5);
    b.alu(AluOp::Xor, code, code, byte);
    b.alui(AluOp::And, h, code, (TABLE - 1) as i64);
    b.alui(AluOp::Shl, t, h, 3);
    b.add(addr, tab, t);
    b.ld8(t, addr, 0); // 64-bit code-table probe
    let hit = b.label();
    let done = b.label();
    b.branch(Cond::Eq, t, code, hit);
    // Miss: install and emit (the table pointer spills under register
    // pressure on this path, as in the original coder).
    super::spill_reload(&mut b, tab, 0);
    b.alui(AluOp::Shl, t, h, 3);
    b.add(addr, tab, t);
    b.st8(code, addr, 0);
    b.alui(AluOp::And, t, i, INPUT - 1);
    b.alui(AluOp::Shl, t, t, 3);
    b.add(addr, out, t);
    b.st8(code, addr, 0);
    b.li(code, 0);
    b.jmp(done);
    b.bind(hit);
    b.add(sum, sum, t);
    b.bind(done);
    b.addi(i, i, 1);
    b.branch(Cond::Lt, i, lim, lp);
    b.addi(p, p, 1);
    b.branch(Cond::Lt, p, plim, pass);
    b.halt();
    b.build().expect("comp builds")
}

/// `gzip`: LZ77-style matcher — 64-bit hash-head table, 32-bit previous
/// chain, byte-wise match extension.
pub fn gzip(scale: Scale) -> Program {
    const WIN: i64 = 16384;
    let positions = 1500 * scale.factor() as i64;
    let mut b = ProgramBuilder::new("gzip");
    super::frame(&mut b, 32);
    let window = b.global_bytes(WIN as u64 * 2, 8);
    let head = b.global_bytes(4096 * 8, 8);
    let prev = b.global_bytes(WIN as u64 * 4, 8);
    let (win, hd, pv, pos, lim, h, addr, t, cand, mlen, byte, x, sum) = (
        g(1),
        g(2),
        g(3),
        g(4),
        g(5),
        g(6),
        g(7),
        g(8),
        g(9),
        g(10),
        g(11),
        g(12),
        g(0),
    );

    b.lea_global(win, window);
    b.lea_global(hd, head);
    b.lea_global(pv, prev);
    b.li(pos, 0);
    b.li(lim, WIN * 2);
    b.li(x, 0x1F2E);
    let init = b.here();
    super::lcg_step(&mut b, x);
    b.alui(AluOp::Shr, t, x, 45); // small alphabet: repetitive input
    b.add(addr, win, pos);
    b.st1(t, addr, 0);
    b.addi(pos, pos, 1);
    b.branch(Cond::Lt, pos, lim, init);

    b.li(sum, 0);
    b.li(pos, 8);
    b.li(lim, positions + 8);
    let lp = b.here();
    super::spill_reload(&mut b, win, 0); // register-pressure spill

    // h = hash of 3 bytes at pos % WIN
    b.alui(AluOp::And, t, pos, WIN - 1);
    b.add(addr, win, t);
    b.ld1(h, addr, 0);
    b.ld1(byte, addr, 1);
    b.alui(AluOp::Shl, h, h, 5);
    b.alu(AluOp::Xor, h, h, byte);
    b.ld1(byte, addr, 2);
    b.alui(AluOp::Shl, h, h, 3);
    b.alu(AluOp::Xor, h, h, byte);
    b.alui(AluOp::And, h, h, 4095);
    // cand = head[h]; head[h] = pos (64-bit words)
    b.alui(AluOp::Shl, t, h, 3);
    b.add(addr, hd, t);
    b.ld8(cand, addr, 0);
    b.st8(pos, addr, 0);
    // prev[pos & mask] = cand (32-bit)
    b.alui(AluOp::And, t, pos, WIN - 1);
    b.alui(AluOp::Shl, t, t, 2);
    b.add(addr, pv, t);
    b.st4(cand, addr, 0);
    // Match extension: compare up to 8 bytes.
    b.li(mlen, 0);
    let ext = b.label();
    let stop = b.label();
    b.bind(ext);
    b.alui(AluOp::And, t, cand, WIN - 1);
    b.add(addr, win, t);
    b.add(addr, addr, mlen);
    b.ld1(byte, addr, 0);
    b.alui(AluOp::And, t, pos, WIN - 1);
    b.add(addr, win, t);
    b.add(addr, addr, mlen);
    b.ld1(t, addr, 0);
    b.branch(Cond::Ne, byte, t, stop);
    b.addi(mlen, mlen, 1);
    b.li(t, 8);
    b.branch(Cond::Lt, mlen, t, ext);
    b.bind(stop);
    b.add(sum, sum, mlen);
    b.addi(pos, pos, 1);
    b.branch(Cond::Lt, pos, lim, lp);
    b.halt();
    b.build().expect("gzip builds")
}

/// `bzip2`: bucket-sort passes — 32-bit keys, 64-bit bucket counters.
pub fn bzip2(scale: Scale) -> Program {
    const N: i64 = 8192;
    const BUCKETS: u64 = 2048;
    let passes = scale.factor() as i64;
    let mut b = ProgramBuilder::new("bzip2");
    let keys = b.global_bytes(N as u64 * 4, 8);
    let counts = b.global_bytes(BUCKETS * 8, 8);
    let sorted = b.global_bytes(N as u64 * 4, 8);
    let (ks, cn, so, i, lim, t, addr, k, p, plim, x, sum) = (
        g(1),
        g(2),
        g(3),
        g(4),
        g(5),
        g(6),
        g(7),
        g(8),
        g(9),
        g(10),
        g(11),
        g(0),
    );

    b.lea_global(ks, keys);
    b.lea_global(cn, counts);
    b.lea_global(so, sorted);
    b.li(i, 0);
    b.li(lim, N);
    b.li(x, 0x5EED);
    let init = b.here();
    super::lcg_step(&mut b, x);
    b.alui(AluOp::Shr, t, x, 33);
    b.alui(AluOp::Shl, k, i, 2);
    b.add(addr, ks, k);
    b.st4(t, addr, 0);
    b.addi(i, i, 1);
    b.branch(Cond::Lt, i, lim, init);

    b.li(sum, 0);
    b.li(p, 0);
    b.li(plim, passes);
    let pass = b.here();
    // Count pass.
    b.li(i, 0);
    let cl = b.here();
    b.alui(AluOp::Shl, t, i, 2);
    b.add(addr, ks, t);
    b.ld4(k, addr, 0);
    b.alui(AluOp::And, k, k, (BUCKETS - 1) as i64);
    b.alui(AluOp::Shl, k, k, 3);
    b.add(addr, cn, k);
    b.ld8(t, addr, 0); // 64-bit counter
    b.addi(t, t, 1);
    b.st8(t, addr, 0);
    b.addi(i, i, 1);
    b.branch(Cond::Lt, i, lim, cl);
    // Scatter pass (approximate: write key to bucket-indexed slot).
    b.li(i, 0);
    let sl = b.here();
    b.alui(AluOp::Shl, t, i, 2);
    b.add(addr, ks, t);
    b.ld4(k, addr, 0);
    b.alui(AluOp::And, t, k, N - 1);
    b.alui(AluOp::Shl, t, t, 2);
    b.add(addr, so, t);
    b.st4(k, addr, 0);
    b.add(sum, sum, k);
    b.addi(i, i, 1);
    b.branch(Cond::Lt, i, lim, sl);
    b.addi(p, p, 1);
    b.branch(Cond::Lt, p, plim, pass);
    b.alui(AluOp::And, sum, sum, 0xFFFF_FFFF);
    b.halt();
    b.build().expect("bzip2 builds")
}

/// `hmmer`: profile-HMM Viterbi dynamic programming — dense 32-bit score
/// rows, branchless max, very high IPC.
pub fn hmmer(scale: Scale) -> Program {
    const M: i64 = 96; // model states
    const L: i64 = 32; // sequence length
    let passes = scale.factor() as i64;
    let mut b = ProgramBuilder::new("hmmer");
    let mrow = b.global_bytes(M as u64 * 8 + 16, 8);
    let irow = b.global_bytes(M as u64 * 4 + 8, 8);
    let trans = b.global_bytes(M as u64 * 4 + 8, 8);
    let (mr, ir, tr, i, jj, t1, t2, addr, sc, best, p, plim) = (
        g(1),
        g(2),
        g(3),
        g(4),
        g(5),
        g(6),
        g(7),
        g(8),
        g(9),
        g(10),
        g(11),
        g(12),
    );

    b.lea_global(mr, mrow);
    b.lea_global(ir, irow);
    b.lea_global(tr, trans);
    b.li(i, 0);
    b.li(t1, M);
    let init = b.here();
    b.alui(AluOp::Mul, t2, i, 7);
    b.alui(AluOp::And, t2, t2, 127);
    b.alui(AluOp::Shl, sc, i, 2);
    b.add(addr, tr, sc);
    b.st4(t2, addr, 0);
    b.addi(i, i, 1);
    b.branch(Cond::Lt, i, t1, init);

    b.li(best, 0);
    b.li(p, 0);
    b.li(plim, passes * L);
    let row = b.here();
    b.li(i, 1);
    b.li(jj, M);
    let cell = b.here();
    // m[i] = max(m[i-1], i[i-1]) + trans[i]; the match row holds 64-bit
    // scores (word-sized integers the conservative policy must shadow).
    b.alui(AluOp::Shl, t1, i, 3);
    b.add(addr, mr, t1);
    b.ld8(sc, addr, -8);
    b.alui(AluOp::Shl, t1, i, 2);
    b.add(addr, ir, t1);
    b.ld4(t2, addr, -4);
    emit_max(&mut b, sc, t2, g(6), g(7));
    b.alui(AluOp::Shl, t1, i, 2);
    b.add(addr, tr, t1);
    b.ld4(t2, addr, 0);
    b.add(sc, sc, t2);
    b.alui(AluOp::And, sc, sc, 0xFFFF);
    b.alui(AluOp::Shl, t1, i, 3);
    b.add(addr, mr, t1);
    b.st8(sc, addr, 0);
    b.alui(AluOp::Shl, t1, i, 2);
    // i[i] = max(i[i], m[i]) (insertion state)
    b.add(addr, ir, t1);
    b.ld4(t2, addr, 0);
    emit_max(&mut b, t2, sc, g(6), g(7));
    b.st4(t2, addr, 0);
    emit_max(&mut b, best, sc, g(6), g(7));
    b.addi(i, i, 1);
    b.branch(Cond::Lt, i, jj, cell);
    b.addi(p, p, 1);
    b.branch(Cond::Lt, p, plim, row);
    b.mov(g(0), best);
    b.halt();
    b.build().expect("hmmer builds")
}

/// `ijpeg`: 8×8 integer DCT butterflies over 16-bit pixel blocks.
pub fn ijpeg(scale: Scale) -> Program {
    let blocks = 90 * scale.factor() as i64;
    let mut b = ProgramBuilder::new("ijpeg");
    let pixels = b.global_bytes(64 * 2, 8);
    let coeffs = b.global_bytes(64 * 2, 8);
    let (px, co, blk, blim, r, c, addr, a0, a1, a2, a3, t) = (
        g(1),
        g(2),
        g(3),
        g(4),
        g(5),
        g(6),
        g(7),
        g(8),
        g(9),
        g(10),
        g(11),
        g(12),
    );

    b.lea_global(px, pixels);
    b.lea_global(co, coeffs);
    // Init one block.
    b.li(r, 0);
    b.li(t, 64);
    let init = b.here();
    b.alui(AluOp::Mul, c, r, 13);
    b.alui(AluOp::And, c, c, 255);
    b.alui(AluOp::Shl, a0, r, 1);
    b.add(addr, px, a0);
    b.store(c, addr, 0, watchdog_isa::Width::B2);
    b.addi(r, r, 1);
    b.branch(Cond::Lt, r, t, init);

    b.li(blk, 0);
    b.li(blim, blocks);
    let block = b.here();
    b.li(r, 0);
    let rowl = b.here();
    // Load 4 pairs, butterfly, store.
    b.alui(AluOp::Shl, t, r, 4); // row offset: r * 8 px * 2 bytes
    b.add(addr, px, t);
    b.load(a0, addr, 0, watchdog_isa::Width::B2);
    b.load(a1, addr, 2, watchdog_isa::Width::B2);
    b.load(a2, addr, 4, watchdog_isa::Width::B2);
    b.load(a3, addr, 6, watchdog_isa::Width::B2);
    b.alu(AluOp::Add, c, a0, a3);
    b.alu(AluOp::Sub, a3, a0, a3);
    b.alu(AluOp::Add, a0, a1, a2);
    b.alu(AluOp::Sub, a2, a1, a2);
    b.alu(AluOp::Add, a1, c, a0);
    b.alu(AluOp::Sub, a0, c, a0);
    b.alui(AluOp::Mul, a2, a2, 181);
    b.alui(AluOp::Shr, a2, a2, 8);
    b.add(addr, co, t);
    b.store(a1, addr, 0, watchdog_isa::Width::B2);
    b.store(a0, addr, 2, watchdog_isa::Width::B2);
    b.store(a2, addr, 4, watchdog_isa::Width::B2);
    b.store(a3, addr, 6, watchdog_isa::Width::B2);
    b.load(a0, addr, 8, watchdog_isa::Width::B2);
    b.load(a1, addr, 10, watchdog_isa::Width::B2);
    b.alu(AluOp::Add, a0, a0, a1);
    b.store(a0, addr, 8, watchdog_isa::Width::B2);
    b.addi(r, r, 1);
    b.li(t, 8);
    b.branch(Cond::Lt, r, t, rowl);
    b.addi(blk, blk, 1);
    b.branch(Cond::Lt, blk, blim, block);
    b.load(g(0), co, 0, watchdog_isa::Width::B2);
    b.halt();
    b.build().expect("ijpeg builds")
}

/// `h264`: sum-of-absolute-differences motion estimation — byte loads,
/// branchless absolute value, very memory-dense.
pub fn h264(scale: Scale) -> Program {
    const BLOCK: i64 = 256; // 16x16
    let searches = 5 * scale.factor() as i64;
    let mut b = ProgramBuilder::new("h264");
    let cur = b.global_bytes(BLOCK as u64, 8);
    let refw = b.global_bytes((BLOCK + 512) as u64, 8);
    let (cu, rf, s, slim, cand, i, addr, a, d, m, sad, best) = (
        g(1),
        g(2),
        g(3),
        g(4),
        g(5),
        g(6),
        g(7),
        g(8),
        g(9),
        g(10),
        g(11),
        g(12),
    );

    b.lea_global(cu, cur);
    b.lea_global(rf, refw);
    b.li(i, 0);
    b.li(a, BLOCK + 512);
    b.li(d, 0x77);
    let init = b.here();
    super::lcg_step(&mut b, d);
    b.alui(AluOp::Shr, m, d, 48);
    b.add(addr, rf, i);
    b.st1(m, addr, 0);
    b.li(m, BLOCK);
    let skip = b.label();
    b.branch(Cond::Geu, i, m, skip);
    b.add(addr, cu, i);
    b.alui(AluOp::Shr, m, d, 40);
    b.st1(m, addr, 0);
    b.bind(skip);
    b.addi(i, i, 1);
    b.branch(Cond::Lt, i, a, init);

    b.li(best, i64::MAX);
    b.li(s, 0);
    b.li(slim, searches);
    let search = b.here();
    b.li(cand, 0);
    let cl = b.here();
    b.li(sad, 0);
    b.li(i, 0);
    let pix = b.here();
    b.add(addr, cu, i);
    b.ld1(a, addr, 0);
    b.alui(AluOp::Shl, d, cand, 6); // candidate offset = cand * 64
    b.add(addr, rf, d);
    b.add(addr, addr, i);
    b.ld1(d, addr, 0);
    b.alu(AluOp::Sub, d, a, d);
    b.alui(AluOp::Sar, m, d, 63); // branchless abs
    b.alu(AluOp::Xor, d, d, m);
    b.alu(AluOp::Sub, d, d, m);
    b.add(sad, sad, d);
    b.addi(i, i, 1);
    b.li(m, BLOCK);
    b.branch(Cond::Lt, i, m, pix);
    // best = min(best, sad), branchless.
    b.alu(AluOp::Slt, m, sad, best);
    b.li(d, 0);
    b.alu(AluOp::Sub, m, d, m);
    b.alu(AluOp::Sub, d, sad, best);
    b.alu(AluOp::And, d, d, m);
    b.alu(AluOp::Add, best, best, d);
    b.addi(cand, cand, 1);
    b.li(m, 8);
    b.branch(Cond::Lt, cand, m, cl);
    b.addi(s, s, 1);
    b.branch(Cond::Lt, s, slim, search);
    b.mov(g(0), best);
    b.halt();
    b.build().expect("h264 builds")
}

/// `sjeng`: chess evaluation — 64-bit piece-list words, byte board probes,
/// piece-square tables, Zobrist-style hash probes into a transposition
/// table.
pub fn sjeng(scale: Scale) -> Program {
    const PIECES: i64 = 16;
    const TT: u64 = 8192;
    let evals = 120 * scale.factor() as i64;
    let mut b = ProgramBuilder::new("sjeng");
    super::frame(&mut b, 32);
    let board = b.global_bytes(64, 8);
    let plist = b.global_bytes(PIECES as u64 * 8, 8);
    let psq = b.global_bytes(64 * 4, 8);
    let tt = b.global_bytes(TT * 8, 8);
    let (bd, pl, pq, tb, e, elim, i, sq, pc, addr, t, hash, score) = (
        g(1),
        g(2),
        g(3),
        g(4),
        g(5),
        g(6),
        g(7),
        g(8),
        g(9),
        g(10),
        g(11),
        g(12),
        g(0),
    );

    b.lea_global(bd, board);
    b.lea_global(pl, plist);
    b.lea_global(pq, psq);
    b.lea_global(tb, tt);
    // Init board, piece list and piece-square table.
    b.li(i, 0);
    b.li(t, 64);
    let init = b.here();
    b.alui(AluOp::Mul, pc, i, 5);
    b.alui(AluOp::And, pc, pc, 7);
    b.add(addr, bd, i);
    b.st1(pc, addr, 0);
    b.alui(AluOp::Mul, pc, i, 11);
    b.alui(AluOp::And, pc, pc, 127);
    b.alui(AluOp::Shl, sq, i, 2);
    b.add(addr, pq, sq);
    b.st4(pc, addr, 0);
    b.addi(i, i, 1);
    b.branch(Cond::Lt, i, t, init);
    b.li(i, 0);
    b.li(t, PIECES);
    let initp = b.here();
    b.alui(AluOp::Mul, sq, i, 13);
    b.alui(AluOp::And, sq, sq, 63);
    b.alui(AluOp::Shl, pc, i, 3);
    b.add(addr, pl, pc);
    b.st8(sq, addr, 0); // 64-bit square index
    b.addi(i, i, 1);
    b.branch(Cond::Lt, i, t, initp);

    b.li(score, 0);
    b.li(e, 0);
    b.li(elim, evals);
    let eval = b.here();
    super::spill_reload(&mut b, bd, 0); // register-pressure spill
    b.li(i, 0);
    b.li(hash, 0x9E37);
    let piece = b.here();
    b.alui(AluOp::Shl, t, i, 3);
    b.add(addr, pl, t);
    b.ld8(sq, addr, 0); // piece list: 64-bit integer load
    b.add(addr, bd, sq);
    b.ld1(pc, addr, 0);
    // Branchy piece dispatch.
    let minor = b.label();
    let major = b.label();
    let donep = b.label();
    b.alui(AluOp::And, t, pc, 4);
    b.branch(Cond::Ne, t, g(13), major);
    b.alui(AluOp::And, t, pc, 2);
    b.branch(Cond::Ne, t, g(13), minor);
    b.addi(score, score, 1); // pawn
    b.jmp(donep);
    b.bind(minor);
    b.alui(AluOp::Shl, t, sq, 2);
    b.add(addr, pq, t);
    b.ld4(t, addr, 0);
    b.add(score, score, t);
    b.jmp(donep);
    b.bind(major);
    b.alui(AluOp::Shl, t, sq, 2);
    b.add(addr, pq, t);
    b.ld4(t, addr, 0);
    b.alui(AluOp::Shl, t, t, 1);
    b.add(score, score, t);
    b.bind(donep);
    // Zobrist-ish hash mix + TT probe.
    b.alu(AluOp::Xor, hash, hash, sq);
    b.alui(AluOp::Mul, hash, hash, 0x100000001B3u64 as i64);
    b.addi(i, i, 1);
    b.li(t, PIECES);
    b.branch(Cond::Lt, i, t, piece);
    b.alui(AluOp::Shr, t, hash, 33);
    b.alui(AluOp::And, t, t, (TT - 1) as i64);
    b.alui(AluOp::Shl, t, t, 3);
    b.add(addr, tb, t);
    b.ld8(t, addr, 0); // transposition-table probe (64-bit)
    let miss = b.label();
    b.branch(Cond::Ne, t, hash, miss);
    b.addi(score, score, 16);
    b.bind(miss);
    b.alui(AluOp::Shr, t, hash, 33);
    b.alui(AluOp::And, t, t, (TT - 1) as i64);
    b.alui(AluOp::Shl, t, t, 3);
    b.add(addr, tb, t);
    b.st8(hash, addr, 0);
    // Perturb one piece's square so evals differ.
    b.alui(AluOp::And, t, e, PIECES - 1);
    b.alui(AluOp::Shl, t, t, 3);
    b.add(addr, pl, t);
    b.ld8(sq, addr, 0);
    b.addi(sq, sq, 17);
    b.alui(AluOp::And, sq, sq, 63);
    b.st8(sq, addr, 0);
    b.addi(e, e, 1);
    b.branch(Cond::Lt, e, elim, eval);
    b.alui(AluOp::And, score, score, 0xFFFF_FFFF);
    b.halt();
    b.build().expect("sjeng builds")
}

/// `go`: territory flood fill — byte board, an explicit heap-allocated
/// worklist of board *pointers* (real pointer pushes/pops, as gnugo's
/// dragon code keeps `char *` positions).
pub fn go(scale: Scale) -> Program {
    const DIM: i64 = 32; // padded board
    let fills = 8 * scale.factor() as i64;
    let mut b = ProgramBuilder::new("go");
    let board = b.global_bytes((DIM * DIM) as u64, 8);
    let (bd, wl, sp, pos, t, addr, x, fcnt, flim, nb, sz, sum) = (
        g(1),
        g(2),
        g(3),
        g(4),
        g(5),
        g(6),
        g(7),
        g(8),
        g(9),
        g(10),
        g(11),
        g(0),
    );

    b.lea_global(bd, board);
    b.li(sz, DIM * DIM * 8);
    b.malloc(wl, sz); // worklist on the heap
    b.li(sum, 0);
    b.li(fcnt, 0);
    b.li(flim, fills);
    b.li(x, 0x60D);
    let fill = b.here();
    // Re-seed the board: 25% walls, 75% empty.
    b.li(pos, 0);
    b.li(t, DIM * DIM);
    let seed = b.here();
    super::lcg_step(&mut b, x);
    b.alui(AluOp::Shr, nb, x, 62); // 0..3
    b.alui(AluOp::Sltu, nb, nb, 1); // wall iff the draw was 0
    b.add(addr, bd, pos);
    b.st1(nb, addr, 0);
    b.addi(pos, pos, 1);
    b.branch(Cond::Lt, pos, t, seed);
    // Push a start *pointer*.
    super::lcg_step(&mut b, x);
    super::lcg_index(&mut b, t, x, (DIM * DIM) as u64);
    b.add(pos, bd, t); // pos is a board pointer
    b.st8(pos, wl, 0); // pointer store
    b.li(sp, 1);
    // Pop loop.
    let pop = b.label();
    let done = b.label();
    b.bind(pop);
    b.branch(Cond::Eq, sp, g(13), done);
    b.addi(sp, sp, -1);
    b.alui(AluOp::Shl, t, sp, 3);
    b.add(addr, wl, t);
    b.ld8(pos, addr, 0); // worklist pop (pointer load)
    b.ld1(t, pos, 0);
    b.branch(Cond::Ne, t, g(13), pop); // not empty: skip
    b.li(t, 9);
    b.st1(t, pos, 0); // mark territory
    b.addi(sum, sum, 1);
    // Push 4 neighbour pointers (guarded by the padded border).
    for delta in [1i64, -1, DIM, -DIM] {
        let skip = b.label();
        b.lea(nb, pos, delta as i32);
        b.alu(AluOp::Sub, t, nb, bd); // back to an index for the guard
        b.li(addr, DIM * DIM);
        b.branch(Cond::Geu, t, addr, skip);
        b.alui(AluOp::Shl, t, sp, 3);
        b.add(addr, wl, t);
        b.st8(nb, addr, 0); // pointer store
        b.addi(sp, sp, 1);
        b.bind(skip);
    }
    // Worklist overflow guard.
    b.li(t, DIM * DIM - 8);
    b.branch(Cond::Lt, sp, t, pop);
    b.bind(done);
    b.addi(fcnt, fcnt, 1);
    b.branch(Cond::Lt, fcnt, flim, fill);
    b.free(wl);
    b.halt();
    b.build().expect("go builds")
}

/// `gobmk`: pattern matching — board scans against a delta-encoded pattern
/// library.
pub fn gobmk(scale: Scale) -> Program {
    const DIM: i64 = 32;
    const PATTERNS: i64 = 4;
    const DELTAS: i64 = 8;
    let passes = scale.factor() as i64;
    let mut b = ProgramBuilder::new("gobmk");
    super::frame(&mut b, 32);
    let board = b.global_bytes((DIM * DIM) as u64, 8);
    let pats = b.global_bytes((PATTERNS * DELTAS * 8) as u64, 8);
    let (bd, pt, pos, t, addr, p, d, v, x, matches, lim, pass) = (
        g(1),
        g(2),
        g(3),
        g(4),
        g(5),
        g(6),
        g(7),
        g(8),
        g(9),
        g(0),
        g(10),
        g(11),
    );

    b.lea_global(bd, board);
    b.lea_global(pt, pats);
    // Init board and the pattern library (deltas + expected colour packed
    // into 32-bit entries).
    b.li(pos, 0);
    b.li(lim, DIM * DIM);
    b.li(x, 0x60B);
    let initb = b.here();
    super::lcg_step(&mut b, x);
    b.alui(AluOp::Shr, t, x, 62);
    b.add(addr, bd, pos);
    b.st1(t, addr, 0);
    b.addi(pos, pos, 1);
    b.branch(Cond::Lt, pos, lim, initb);
    b.li(p, 0);
    b.li(lim, PATTERNS * DELTAS);
    let initp = b.here();
    b.alui(AluOp::Mul, t, p, 37);
    b.alui(AluOp::And, t, t, 63);
    b.alui(AluOp::Shl, v, p, 3);
    b.add(addr, pt, v);
    b.st8(t, addr, 0); // 64-bit pattern entry

    b.addi(p, p, 1);
    b.branch(Cond::Lt, p, lim, initp);

    // Scan: every interior point × every pattern × every delta.
    b.li(matches, 0);
    b.li(pass, 0);
    let passes_lim = g(12);
    b.li(passes_lim, passes);
    let scan = b.here();
    b.li(pos, DIM + 1);
    b.li(lim, DIM * DIM - DIM - 1);
    let point = b.here();
    super::spill_reload(&mut b, pt, 0); // register-pressure spill
    b.li(p, 0);
    let pat = b.here();
    b.li(d, 0);
    let fail = b.label();
    let next_pat = b.label();
    let delta = b.here();
    // entry = pats[p*DELTAS + d]; offset = entry & 63; want = entry >> 6 & 3
    b.alui(AluOp::Shl, t, p, 3);
    b.add(t, t, d);
    b.alui(AluOp::Shl, t, t, 3);
    b.add(addr, pt, t);
    b.ld8(v, addr, 0); // 64-bit pattern entry
    b.alui(AluOp::And, t, v, 63);
    b.add(addr, bd, pos);
    b.add(addr, addr, t);
    b.ld1(t, addr, -32); // probe around the point
    b.alui(AluOp::Shr, v, v, 6);
    b.alui(AluOp::And, v, v, 3);
    b.branch(Cond::Ne, t, v, fail);
    b.addi(d, d, 1);
    b.li(t, DELTAS);
    b.branch(Cond::Lt, d, t, delta);
    b.addi(matches, matches, 1); // full pattern match
    b.jmp(next_pat);
    b.bind(fail);
    b.bind(next_pat);
    b.addi(p, p, 1);
    b.li(t, PATTERNS);
    b.branch(Cond::Lt, p, t, pat);
    b.addi(pos, pos, 1);
    b.branch(Cond::Lt, pos, lim, point);
    b.addi(pass, pass, 1);
    b.branch(Cond::Lt, pass, passes_lim, scan);
    b.halt();
    b.build().expect("gobmk builds")
}

//! The benchmark registry: the twenty SPEC C benchmarks of §9.1.

use crate::kernels;
use watchdog_isa::Program;

/// Input scale (the paper uses reference inputs with sampling; we scale the
/// kernels directly).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scale {
    /// Tiny inputs for unit tests (tens of thousands of instructions).
    Test,
    /// Default for figure regeneration (hundreds of thousands).
    Small,
    /// Larger runs for final numbers (about a million instructions).
    Reference,
}

impl Scale {
    /// Linear size multiplier relative to [`Scale::Test`].
    pub fn factor(self) -> u64 {
        match self {
            Scale::Test => 1,
            Scale::Small => 4,
            Scale::Reference => 10,
        }
    }
}

/// Behavioural category of a benchmark (drives where it lands in Figs.
/// 5–11).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Category {
    /// Floating-point, array-streaming: few pointer operations, low
    /// Watchdog overhead.
    Fp,
    /// Integer compute: moderate word traffic, little real pointer
    /// movement.
    Int,
    /// Pointer-chasing / allocation-intensive: the expensive end.
    Pointer,
}

/// A registered benchmark.
#[derive(Debug, Clone, Copy)]
pub struct BenchSpec {
    /// Benchmark name (the paper's label).
    pub name: &'static str,
    /// Behavioural category.
    pub category: Category,
    builder: fn(Scale) -> Program,
}

impl BenchSpec {
    /// Builds the benchmark program at the given scale.
    pub fn build(&self, scale: Scale) -> Program {
        (self.builder)(scale)
    }
}

/// All twenty benchmarks in the paper's figure order.
pub fn all_benchmarks() -> Vec<BenchSpec> {
    use Category::*;
    vec![
        BenchSpec {
            name: "lbm",
            category: Fp,
            builder: kernels::fp::lbm,
        },
        BenchSpec {
            name: "comp",
            category: Int,
            builder: kernels::int::compress,
        },
        BenchSpec {
            name: "gzip",
            category: Int,
            builder: kernels::int::gzip,
        },
        BenchSpec {
            name: "milc",
            category: Fp,
            builder: kernels::fp::milc,
        },
        BenchSpec {
            name: "bzip2",
            category: Int,
            builder: kernels::int::bzip2,
        },
        BenchSpec {
            name: "ammp",
            category: Fp,
            builder: kernels::fp::ammp,
        },
        BenchSpec {
            name: "go",
            category: Int,
            builder: kernels::int::go,
        },
        BenchSpec {
            name: "sjeng",
            category: Int,
            builder: kernels::int::sjeng,
        },
        BenchSpec {
            name: "equake",
            category: Fp,
            builder: kernels::fp::equake,
        },
        BenchSpec {
            name: "h264",
            category: Int,
            builder: kernels::int::h264,
        },
        BenchSpec {
            name: "ijpeg",
            category: Int,
            builder: kernels::int::ijpeg,
        },
        BenchSpec {
            name: "gobmk",
            category: Int,
            builder: kernels::int::gobmk,
        },
        BenchSpec {
            name: "art",
            category: Fp,
            builder: kernels::fp::art,
        },
        BenchSpec {
            name: "twolf",
            category: Pointer,
            builder: kernels::ptr::twolf,
        },
        BenchSpec {
            name: "hmmer",
            category: Int,
            builder: kernels::int::hmmer,
        },
        BenchSpec {
            name: "vpr",
            category: Pointer,
            builder: kernels::ptr::vpr,
        },
        BenchSpec {
            name: "mcf",
            category: Pointer,
            builder: kernels::ptr::mcf,
        },
        BenchSpec {
            name: "mesa",
            category: Fp,
            builder: kernels::fp::mesa,
        },
        BenchSpec {
            name: "gcc",
            category: Pointer,
            builder: kernels::ptr::gcc,
        },
        BenchSpec {
            name: "perl",
            category: Pointer,
            builder: kernels::ptr::perl,
        },
    ]
}

/// Looks a benchmark up by name.
pub fn benchmark(name: &str) -> Option<BenchSpec> {
    all_benchmarks().into_iter().find(|b| b.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twenty_benchmarks_with_unique_names() {
        let all = all_benchmarks();
        assert_eq!(all.len(), 20);
        let mut names = std::collections::HashSet::new();
        for b in &all {
            assert!(names.insert(b.name), "duplicate benchmark {}", b.name);
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(benchmark("mcf").is_some());
        assert!(benchmark("lbm").is_some());
        assert!(benchmark("nonesuch").is_none());
    }

    #[test]
    fn every_benchmark_builds_at_test_scale() {
        for b in all_benchmarks() {
            let p = b.build(Scale::Test);
            assert_eq!(p.name(), b.name);
            assert!(p.len() > 5, "{} suspiciously small", b.name);
        }
    }

    #[test]
    fn scale_factors_are_monotonic() {
        assert!(Scale::Test.factor() < Scale::Small.factor());
        assert!(Scale::Small.factor() < Scale::Reference.factor());
    }
}

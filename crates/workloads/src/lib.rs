//! Workloads for the Watchdog reproduction.
//!
//! * [`kernels`] — twenty synthetic kernels named after the twenty SPEC C
//!   benchmarks the paper evaluates (§9.1). Each kernel reproduces its
//!   namesake's *behavioural profile* — pointer density, FP intensity,
//!   allocation rate, working-set size and branch behaviour — which is what
//!   Figures 5–11 are sensitive to. They are not the SPEC sources (which
//!   are proprietary); DESIGN.md documents the substitution.
//! * [`juliet`] — a generator for the NIST Juliet-style use-after-free
//!   suite: 291 attack cases across CWE-416 (use after free) and CWE-562
//!   (return of stack variable address), each with a benign twin for
//!   false-positive testing (§9.2).
//! * [`spec`] — the benchmark registry: name → builder, with the paper's
//!   ordering.
//!
//! # Example
//!
//! ```
//! use watchdog_workloads::{benchmark, Scale};
//! let program = benchmark("mcf").expect("known benchmark").build(Scale::Test);
//! assert_eq!(program.name(), "mcf");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod juliet;
pub mod kernels;
pub mod spec;

pub use juliet::{
    benign_suite, benign_suite_prefix, juliet_suite, juliet_suite_prefix, Cwe, JulietCase,
};
pub use spec::{all_benchmarks, benchmark, BenchSpec, Category, Scale};

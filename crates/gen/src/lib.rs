//! **watchdog-gen** — seeded guest-program generator with a differential
//! detection oracle.
//!
//! The paper's detection evaluation (§9.2) rests on 291 hand-built
//! Juliet-style cases: every lifetime bug that suite can catch is one
//! somebody thought to write down. This crate turns detection coverage
//! into an *unbounded, seed-reproducible space*: a seeded RNG samples an
//! adversarial heap-lifetime script — mallocs, frees, pointer copies
//! through registers, globals, heap words and function frames,
//! reallocation that recycles chunks and lock locations, double frees,
//! instrumented pool allocators (`newident`/`setident`/`killident`, §7),
//! benign twins — and because the script is sampled against an exact
//! model *before* any instruction is emitted, the generator knows
//! precisely which access must trap, with which [`ViolationKind`], at
//! which instruction index. That ground truth is the [`Oracle`].
//!
//! The differential harness ([`check_seed`]) then runs each program under
//! every mode — baseline, conservative and ISA-assisted Watchdog (both
//! functional and timed), the bounds extension, and the §2.1
//! location-based checker — and cross-checks: detections equal the oracle
//! (no misses, no false positives, exact faulting instruction),
//! timed and functional runs agree on architectural state, and
//! identifier-based checking catches the reallocation cases
//! location-based checking is blind to (Table 1).
//!
//! Everything is a pure function of the seed, so any failure reduces to a
//! one-line repro: `watchdog-cli fuzz --seed <K>`.
//!
//! # Example
//!
//! ```
//! use watchdog_gen::{check_seed, generate, GenConfig};
//!
//! let cfg = GenConfig::default();
//! let g = generate(3, &cfg);
//! assert!(g.program.len() > 10);
//! // The full differential matrix passes for this seed.
//! let outcome = check_seed(3, &cfg).expect("no divergence");
//! assert_eq!(outcome.seed, 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diff;
pub mod rng;
pub mod script;

pub use diff::{check_generated, check_seed, DiffFailure, DiffOutcome};
pub use rng::Rng;
pub use script::{generate, GenConfig, Generated, Oracle, Payload, Route};
pub use watchdog_core::error::ViolationKind;

/// FNV-1a accumulation, shared by the program and report digests — the
/// determinism tests compare both across sharded runs, so there is
/// exactly one implementation of the hash.
pub(crate) fn fnv1a(h: &mut u64, s: &str) {
    for b in s.bytes() {
        *h ^= u64::from(b);
        *h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
}

/// FNV-1a offset basis (the initial accumulator value).
pub(crate) const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

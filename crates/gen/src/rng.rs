//! A tiny, dependency-free, seed-reproducible PRNG.
//!
//! SplitMix64 (Steele, Lea & Flood, OOPSLA 2014): one 64-bit state word, a
//! Weyl increment and a 3-round finalizer. Statistical quality is far more
//! than sufficient for sampling program shapes, and — the property that
//! actually matters here — the stream is a pure function of the seed on
//! every platform, so a failing program is always reproducible from its
//! seed alone.

/// Seeded deterministic random-number generator.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// A generator seeded with `seed`. Distinct seeds (including
    /// consecutive ones) produce decorrelated streams.
    pub fn new(seed: u64) -> Self {
        Rng { state: seed }
    }

    /// Next raw 64-bit sample.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform sample in `0..n` (`n > 0`; modulo bias is irrelevant at the
    /// ranges used here).
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    /// Uniform sample from a slice.
    ///
    /// # Panics
    ///
    /// Panics if the slice is empty.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.below(xs.len() as u64) as usize]
    }

    /// `true` with probability `num/den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0, "consecutive seeds must decorrelate");
    }

    #[test]
    fn below_stays_in_range() {
        let mut r = Rng::new(7);
        for _ in 0..1000 {
            assert!(r.below(13) < 13);
        }
        // All residues are reachable.
        let mut seen = [false; 13];
        for _ in 0..1000 {
            seen[r.below(13) as usize] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    fn pick_and_chance() {
        let mut r = Rng::new(3);
        let xs = [10, 20, 30];
        for _ in 0..50 {
            assert!(xs.contains(r.pick(&xs)));
        }
        assert!((0..100).filter(|_| r.chance(1, 2)).count() > 20);
        assert_eq!((0..100).filter(|_| r.chance(0, 2)).count(), 0);
    }
}

//! The differential detection harness.
//!
//! For one seed, [`check_seed`] runs the generated program under the full
//! mode matrix and cross-checks every observation against the
//! [`Oracle`] ground truth:
//!
//! | run | assertion |
//! |---|---|
//! | baseline, functional + timed | no violation; timed agrees with functional |
//! | watchdog/conservative, functional + timed | violation kind **and** instruction index match the oracle; timed agrees |
//! | watchdog/isa-assisted, functional + timed | same oracle match (profiling must not miss or over-mark); timed agrees |
//! | watchdog+bounds (fused), functional | same oracle match (all generated accesses are in-bounds) |
//! | location-based, functional | clean on benign programs; **must miss** the location-blind cases — reallocation reuse and pool-allocator sub-object frees (Table 1 / §7) |
//! | benign twin × {cons, isa, location, bounds} | no violation (false-positive check; skipped for benign payloads, whose twin is instruction-identical to the already-checked program) |
//!
//! "Timed agrees with functional" means identical architectural statistics,
//! heap behaviour, footprint and violation ([`RunReport::agrees_with`]) —
//! the timing model may only add cycle data, never change what happened.
//!
//! A failure carries the seed and a one-line repro command; the bench
//! crate's `fuzz` binary shards seeds across the worker pool and prints
//! them.

use crate::script::{generate, GenConfig, Generated, Oracle, Payload};
use std::fmt;
use watchdog_core::prelude::*;
use watchdog_isa::Program;

/// Everything a passing seed reports (compact, `Eq`-comparable — the
/// determinism tests assert sharded campaigns reproduce these exactly).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiffOutcome {
    /// The seed.
    pub seed: u64,
    /// Payload the generator chose.
    pub payload: Payload,
    /// The oracle's expectation.
    pub expected: Option<ViolationKind>,
    /// Dynamic instructions of the conservative functional run.
    pub insts: u64,
    /// Simulations performed for this seed.
    pub runs: usize,
    /// Fingerprint of the generated programs + oracle.
    pub program_digest: u64,
    /// Fingerprint of the per-mode results.
    pub report_digest: u64,
}

/// A seed that failed the differential check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiffFailure {
    /// The failing seed.
    pub seed: u64,
    /// What diverged.
    pub detail: String,
}

impl fmt::Display for DiffFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "seed {}: {}\n  repro: watchdog-cli fuzz --seed {}",
            self.seed, self.detail, self.seed
        )
    }
}

use crate::{fnv1a, FNV_OFFSET};

/// Checks a report against the oracle: same violation kind, raised at the
/// exact expected instruction.
fn check_oracle(report: &RunReport, oracle: &Oracle) -> Result<(), String> {
    match (report.violation, oracle.expected) {
        (None, None) => Ok(()),
        (Some(v), Some(kind)) => {
            if v.kind != kind {
                Err(format!(
                    "{}: wrong violation kind: expected {kind}, got {} (at instruction {})",
                    report.mode, v.kind, v.pc_index
                ))
            } else if Some(v.pc_index) != oracle.expected_pc {
                Err(format!(
                    "{}: violation at instruction {} but the oracle places it at {:?}",
                    report.mode, v.pc_index, oracle.expected_pc
                ))
            } else {
                Ok(())
            }
        }
        (None, Some(kind)) => Err(format!(
            "{}: MISSED violation: oracle expects {kind} at instruction {:?}",
            report.mode, oracle.expected_pc
        )),
        (Some(v), None) => Err(format!(
            "{}: FALSE POSITIVE: {v} in a program the oracle says is benign",
            report.mode
        )),
    }
}

/// Runs the full differential matrix for one seed.
///
/// # Errors
///
/// Returns a [`DiffFailure`] describing the first divergence: a missed or
/// misplaced violation, a false positive, a timed/functional disagreement,
/// a location-based detection where blindness is expected, or a simulator
/// error.
pub fn check_seed(seed: u64, cfg: &GenConfig) -> Result<DiffOutcome, DiffFailure> {
    check_generated(&generate(seed, cfg))
}

/// [`check_seed`] for an already-generated case (lets callers print the
/// case and check it without generating twice).
pub fn check_generated(g: &Generated) -> Result<DiffOutcome, DiffFailure> {
    let seed = g.seed;
    let fail = |detail: String| DiffFailure { seed, detail };
    let mut runs = 0usize;
    let mut digest = FNV_OFFSET;
    let mut run = |mode: Mode, timed: bool, p: &Program| -> Result<RunReport, DiffFailure> {
        let sim_cfg = if timed {
            SimConfig::timed(mode)
        } else {
            SimConfig::functional(mode)
        };
        let r = Simulator::new(sim_cfg).run(p).map_err(|e| DiffFailure {
            seed,
            detail: format!("{} of {} failed to simulate: {e}", mode.label(), p.name()),
        })?;
        runs += 1;
        fnv1a(
            &mut digest,
            &format!(
                "{}|{}|{:?}|{:?}|{:?}|{}|{}\n",
                r.program,
                r.mode,
                r.machine,
                r.heap,
                r.violation,
                r.cycles(),
                r.uops()
            ),
        );
        Ok(r)
    };

    // Baseline: detects nothing, runs to completion.
    let base_f = run(Mode::Baseline, false, &g.program)?;
    if let Some(v) = base_f.violation {
        return Err(fail(format!("baseline reported a violation: {v}")));
    }
    let base_t = run(Mode::Baseline, true, &g.program)?;
    base_f.agrees_with(&base_t).map_err(&fail)?;

    // Watchdog modes: oracle-exact detection, timed == functional.
    let cons = Mode::watchdog_conservative();
    let isa = Mode::watchdog();
    let cons_f = run(cons, false, &g.program)?;
    check_oracle(&cons_f, &g.oracle).map_err(&fail)?;
    let cons_t = run(cons, true, &g.program)?;
    check_oracle(&cons_t, &g.oracle).map_err(&fail)?;
    cons_f.agrees_with(&cons_t).map_err(&fail)?;
    let isa_f = run(isa, false, &g.program)?;
    check_oracle(&isa_f, &g.oracle).map_err(&fail)?;
    let isa_t = run(isa, true, &g.program)?;
    check_oracle(&isa_t, &g.oracle).map_err(&fail)?;
    isa_f.agrees_with(&isa_t).map_err(&fail)?;

    // Full memory safety is a superset: same detections, still no false
    // positives (every generated access is in-bounds by construction).
    let bounds = Mode::WatchdogBounds {
        ptr: PointerId::Conservative,
        uops: BoundsUops::Fused,
    };
    let bounds_f = run(bounds, false, &g.program)?;
    check_oracle(&bounds_f, &g.oracle).map_err(&fail)?;

    // Location-based checking: never a false positive on benign programs,
    // and provably blind to the reallocation payload (Table 1).
    let loc_f = run(Mode::LocationBased, false, &g.program)?;
    if g.oracle.expected.is_none() {
        if let Some(v) = loc_f.violation {
            return Err(fail(format!("location-based false positive: {v}")));
        }
    } else if g.oracle.location_blind {
        if let Some(v) = loc_f.violation {
            return Err(fail(format!(
                "location-based checking unexpectedly caught a location-blind case ({v}) — \
                 the faulting access was supposed to land in *allocated* memory \
                 (recycled chunk or still-live pool region)"
            )));
        }
    }
    if g.oracle.payload == Payload::UseAfterRealloc && cons_f.heap.reused == 0 {
        return Err(fail(
            "reallocation payload never reused a chunk (LIFO assumption broken)".into(),
        ));
    }

    // The benign twin must be clean under every checking mode. For
    // benign payloads the twin is instruction-identical to the program
    // (the payload arm ignores `bad`), and the program itself was already
    // oracle-checked clean under all four modes above — skip the
    // redundant simulations.
    if g.oracle.expected.is_some() {
        for mode in [cons, isa, Mode::LocationBased, bounds] {
            let r = run(mode, false, &g.twin)?;
            if let Some(v) = r.violation {
                return Err(fail(format!(
                    "benign twin raised a false positive under {}: {v}",
                    mode.label()
                )));
            }
        }
    }

    Ok(DiffOutcome {
        seed,
        payload: g.oracle.payload,
        expected: g.oracle.expected,
        insts: cons_f.machine.insts,
        runs,
        program_digest: g.digest(),
        report_digest: digest,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_band_of_seeds_passes_the_full_matrix() {
        let cfg = GenConfig::default();
        for seed in 0..32 {
            check_seed(seed, &cfg).unwrap_or_else(|e| panic!("{e}"));
        }
    }

    #[test]
    fn outcome_is_reproducible() {
        let cfg = GenConfig::default();
        let a = check_seed(7, &cfg).unwrap();
        let b = check_seed(7, &cfg).unwrap();
        assert_eq!(a, b);
        // 8 main-matrix runs, plus 4 twin runs for violating payloads.
        let want = if a.expected.is_some() { 12 } else { 8 };
        assert_eq!(a.runs, want, "matrix size for {:?}", a.payload);
        assert!(a.insts > 0);
    }

    #[test]
    fn failures_render_a_repro_command() {
        let f = DiffFailure {
            seed: 99,
            detail: "synthetic".into(),
        };
        let s = f.to_string();
        assert!(s.contains("watchdog-cli fuzz --seed 99"), "{s}");
    }

    #[test]
    fn tampered_oracle_is_rejected() {
        // Sanity-check the checker itself: shift the expected pc by one
        // and the harness must flag the divergence.
        let cfg = GenConfig::default();
        let mut g = (0..200)
            .map(|s| generate(s, &cfg))
            .find(|g| g.oracle.expected.is_some())
            .expect("a violating seed exists");
        g.oracle.expected_pc = g.oracle.expected_pc.map(|pc| pc + 1);
        let err = check_generated(&g).expect_err("tampered oracle must fail");
        assert!(err.detail.contains("oracle places it"), "{}", err.detail);
    }
}

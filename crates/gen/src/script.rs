//! Lifetime-script sampling and program emission.
//!
//! Generation happens in two phases, and the ordering is the whole trick:
//!
//! 1. **Sample a lifetime script** against an exact model of the guest
//!    heap: which allocations exist, which are live, which registers /
//!    global slots / heap words hold which pointer (and at what offset).
//!    Every sampled operation is *legal by construction* — a benign access
//!    only goes through a live pointer at an in-bounds offset, a free only
//!    through an allocation base — so the generator knows the precise
//!    run-time fate of every instruction before it is emitted.
//! 2. **Append a payload**: either a benign epilogue or one constructed
//!    memory-safety violation (use-after-free through four aliasing
//!    routes, reallocation reuse, double free, use-after-return, wild
//!    dereference, invalid free, or an instrumented pool allocator's
//!    sub-object use-after-free). Because the script above is benign by
//!    construction, the payload's faulting instruction is *exactly* the
//!    first (and only) violation in the program — that fact, its expected
//!    [`ViolationKind`] and its instruction index form the [`Oracle`].
//!
//! Every bad program also gets a **benign twin** (the same script with the
//! payload defused, in the style of the Juliet "good" functions) used for
//! false-positive testing.
//!
//! Offsets are 8-byte aligned, accesses are full words, and allocation
//! sizes are exact allocator size classes — so the reallocation payload
//! can *guarantee* LIFO address reuse, the case location-based checking
//! (§2.1, Table 1) is provably blind to.

use crate::rng::Rng;
use std::collections::BTreeMap;
use watchdog_core::error::ViolationKind;
use watchdog_isa::layout::{GLOBAL_BASE, GLOBAL_SIZE};
use watchdog_isa::{AluOp, Cond, Gpr, Label, Program, ProgramBuilder};

/// Number of register pointer slots the script plays with (`r0..r4`;
/// `r0` always holds the protected victim allocation's base).
const SLOTS: usize = 5;
/// Number of global stash slots.
const GSLOTS: usize = 4;

// Register conventions (disjoint from the slot registers).
const ALIAS: Gpr = Gpr::new(5); // payload alias pointer
const SCRATCH: Gpr = Gpr::new(6); // integer scratch
const SIZE: Gpr = Gpr::new(7); // malloc size argument
const CTR: Gpr = Gpr::new(8); // loop counter
const ADDR: Gpr = Gpr::new(9); // address / call-argument register
const CALLEE: Gpr = Gpr::new(10); // callee scratch
const BOUND: Gpr = Gpr::new(11); // loop bound

fn slot(i: usize) -> Gpr {
    Gpr::new(i as u8)
}

/// Generator tunables. The defaults produce programs of a few dozen to a
/// couple hundred dynamic instructions — large enough to entangle
/// lifetimes, small enough to run an up-to-12-way differential matrix per seed.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Minimum script operations (before the payload).
    pub min_ops: usize,
    /// Maximum script operations.
    pub max_ops: usize,
    /// Allocation sizes to sample from. **Must be exact allocator size
    /// classes** (16/32/64/128/256/…): the reallocation oracle relies on a
    /// same-size malloc popping the just-freed chunk from its LIFO bin.
    pub sizes: Vec<u64>,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            min_ops: 6,
            max_ops: 24,
            sizes: vec![16, 32, 64, 128, 256],
        }
    }
}

/// What a register slot / stash slot / heap word holds, as tracked by the
/// sampling model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Val {
    /// A non-pointer (or a value the model refuses to reason about —
    /// never dereferenced, never freed).
    Garbage,
    /// A pointer `off` bytes into allocation `alloc`. Offsets are always
    /// kept in `[0, size-8]`, so a word access through the value is
    /// in-bounds whenever the allocation is live.
    Ptr {
        /// Index into the model's allocation table.
        alloc: usize,
        /// Byte offset from the allocation base (8-aligned).
        off: u64,
    },
}

/// One sampled script operation with fully-resolved operands. Emission is
/// a deterministic replay, so the bad program and its benign twin share
/// the script instruction-for-instruction.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// `slot = malloc(size)`.
    Malloc { dst: usize, size: u64 },
    /// `free(slot)` — slot is a live allocation base (never the victim).
    Free { s: usize },
    /// `dst = src` (register pointer copy).
    Copy { dst: usize, src: usize },
    /// `dst = src + delta` (pointer arithmetic, stays in-bounds).
    Lea { dst: usize, src: usize, delta: i32 },
    /// Store an integer through a live slot.
    StoreInt { s: usize, disp: i32, val: i64 },
    /// Load a word through a live slot into the integer scratch.
    LoadInt { s: usize, disp: i32 },
    /// Store slot `src`'s pointer into a live allocation's word.
    PtrStore { dst: usize, disp: i32, src: usize },
    /// Load a (model-tracked) heap word into a slot.
    PtrLoad { dst: usize, src: usize, disp: i32 },
    /// Publish a slot to a global stash slot.
    StashStore { g: usize, src: usize },
    /// Reload a global stash slot into a register slot.
    StashLoad { dst: usize, g: usize },
    /// Pass a live pointer to the access helper function (`call`).
    CallAccess { s: usize },
    /// Call the frame helper (stack allocate, store, load, return).
    CallFrame,
    /// A small counted loop of loads through a live slot.
    LoopLoad { s: usize, disp: i32, iters: i64 },
}

/// The sampling model: exact knowledge of every pointer the program will
/// hold and every allocation's liveness at each script position.
#[derive(Debug)]
struct Model {
    /// `(size, live)` per allocation; index 0 is the protected victim.
    allocs: Vec<(u64, bool)>,
    /// Model of heap words that were stored through: `(alloc, offset) ->
    /// value`. Words never stored through read back as `Garbage`.
    words: BTreeMap<(usize, u64), Val>,
    regs: [Val; SLOTS],
    stash: [Val; GSLOTS],
}

impl Model {
    fn new(victim_size: u64) -> Self {
        let mut regs = [Val::Garbage; SLOTS];
        regs[0] = Val::Ptr { alloc: 0, off: 0 };
        Model {
            allocs: vec![(victim_size, true)],
            words: BTreeMap::new(),
            regs,
            stash: [Val::Garbage; GSLOTS],
        }
    }

    fn size_of(&self, alloc: usize) -> u64 {
        self.allocs[alloc].0
    }

    fn live(&self, alloc: usize) -> bool {
        self.allocs[alloc].1
    }

    /// Slots holding a pointer to a live allocation.
    fn live_slots(&self) -> Vec<usize> {
        (0..SLOTS)
            .filter(|&i| matches!(self.regs[i], Val::Ptr { alloc, .. } if self.live(alloc)))
            .collect()
    }

    /// Slots that may legally be freed: a live allocation base that is not
    /// the victim (the payload needs the victim alive).
    fn free_candidates(&self) -> Vec<usize> {
        (1..SLOTS)
            .filter(|&i| {
                matches!(self.regs[i], Val::Ptr { alloc, off: 0 } if alloc != 0 && self.live(alloc))
            })
            .collect()
    }

    /// Slots holding any pointer, live or dangling (copying and stashing a
    /// dangling pointer is benign; only dereferencing it is not).
    fn ptr_slots(&self) -> Vec<usize> {
        (0..SLOTS)
            .filter(|&i| matches!(self.regs[i], Val::Ptr { .. }))
            .collect()
    }

    /// Applies the model effect of `op` (mirrors the emitted semantics).
    fn apply(&mut self, op: Op) {
        match op {
            Op::Malloc { dst, size } => {
                self.allocs.push((size, true));
                self.regs[dst] = Val::Ptr {
                    alloc: self.allocs.len() - 1,
                    off: 0,
                };
            }
            Op::Free { s } => {
                let Val::Ptr { alloc, .. } = self.regs[s] else {
                    unreachable!("free candidates hold pointers");
                };
                self.allocs[alloc].1 = false;
            }
            Op::Copy { dst, src } => self.regs[dst] = self.regs[src],
            Op::Lea { dst, src, delta } => {
                let Val::Ptr { alloc, off } = self.regs[src] else {
                    unreachable!("lea sources hold pointers");
                };
                self.regs[dst] = Val::Ptr {
                    alloc,
                    off: (off as i64 + delta as i64) as u64,
                };
            }
            Op::StoreInt { s, disp, .. } => {
                let (alloc, abs) = self.resolve(s, disp);
                self.words.insert((alloc, abs), Val::Garbage);
            }
            Op::LoadInt { .. } | Op::CallAccess { .. } | Op::CallFrame | Op::LoopLoad { .. } => {}
            Op::PtrStore { dst, disp, src } => {
                let (alloc, abs) = self.resolve(dst, disp);
                let v = self.regs[src];
                self.words.insert((alloc, abs), v);
            }
            Op::PtrLoad { dst, src, disp } => {
                let (alloc, abs) = self.resolve(src, disp);
                self.regs[dst] = self
                    .words
                    .get(&(alloc, abs))
                    .copied()
                    .unwrap_or(Val::Garbage);
            }
            Op::StashStore { g, src } => self.stash[g] = self.regs[src],
            Op::StashLoad { dst, g } => self.regs[dst] = self.stash[g],
        }
    }

    /// Absolute `(alloc, offset)` a displacement off a slot resolves to.
    fn resolve(&self, s: usize, disp: i32) -> (usize, u64) {
        let Val::Ptr { alloc, off } = self.regs[s] else {
            unreachable!("accesses go through pointer slots");
        };
        (alloc, (off as i64 + disp as i64) as u64)
    }
}

/// Samples an 8-aligned in-bounds word offset of an allocation.
fn aligned_off(rng: &mut Rng, size: u64) -> u64 {
    8 * rng.below(size / 8)
}

/// Displacement from slot `s`'s current offset to a random in-bounds word.
fn in_bounds_disp(rng: &mut Rng, model: &Model, s: usize) -> i32 {
    let Val::Ptr { alloc, off } = model.regs[s] else {
        unreachable!("caller checked the slot holds a pointer");
    };
    (aligned_off(rng, model.size_of(alloc)) as i64 - off as i64) as i32
}

/// Samples one legal operation, or `None` if the picked kind has no legal
/// instantiation in the current model state.
fn try_op(rng: &mut Rng, model: &Model, cfg: &GenConfig) -> Option<Op> {
    let dst = 1 + rng.below(SLOTS as u64 - 1) as usize;
    match rng.below(13) {
        0 | 1 => Some(Op::Malloc {
            dst,
            size: *rng.pick(&cfg.sizes),
        }),
        2 => {
            let c = model.free_candidates();
            (!c.is_empty()).then(|| Op::Free { s: *rng.pick(&c) })
        }
        3 => Some(Op::Copy {
            dst,
            src: rng.below(SLOTS as u64) as usize,
        }),
        4 => {
            let c = model.live_slots();
            (!c.is_empty()).then(|| {
                let src = *rng.pick(&c);
                Op::Lea {
                    dst,
                    src,
                    delta: in_bounds_disp(rng, model, src),
                }
            })
        }
        5 => {
            let c = model.live_slots();
            (!c.is_empty()).then(|| {
                let s = *rng.pick(&c);
                Op::StoreInt {
                    s,
                    disp: in_bounds_disp(rng, model, s),
                    val: rng.below(1u64 << 32) as i64,
                }
            })
        }
        6 => {
            let c = model.live_slots();
            (!c.is_empty()).then(|| {
                let s = *rng.pick(&c);
                Op::LoadInt {
                    s,
                    disp: in_bounds_disp(rng, model, s),
                }
            })
        }
        7 => {
            let (d, s) = (model.live_slots(), model.ptr_slots());
            (!d.is_empty() && !s.is_empty()).then(|| {
                let store_to = *rng.pick(&d);
                Op::PtrStore {
                    dst: store_to,
                    disp: in_bounds_disp(rng, model, store_to),
                    src: *rng.pick(&s),
                }
            })
        }
        8 => {
            let c = model.live_slots();
            (!c.is_empty()).then(|| {
                let src = *rng.pick(&c);
                Op::PtrLoad {
                    dst,
                    src,
                    disp: in_bounds_disp(rng, model, src),
                }
            })
        }
        9 => {
            let c = model.ptr_slots();
            (!c.is_empty()).then(|| Op::StashStore {
                g: rng.below(GSLOTS as u64) as usize,
                src: *rng.pick(&c),
            })
        }
        10 => Some(Op::StashLoad {
            dst,
            g: rng.below(GSLOTS as u64) as usize,
        }),
        11 => {
            let c = model.live_slots();
            if c.is_empty() || rng.chance(1, 3) {
                Some(Op::CallFrame)
            } else {
                Some(Op::CallAccess { s: *rng.pick(&c) })
            }
        }
        _ => {
            let c = model.live_slots();
            (!c.is_empty()).then(|| {
                let s = *rng.pick(&c);
                Op::LoopLoad {
                    s,
                    disp: in_bounds_disp(rng, model, s),
                    iters: 2 + rng.below(3) as i64,
                }
            })
        }
    }
}

fn sample_script(rng: &mut Rng, model: &mut Model, n_ops: usize, cfg: &GenConfig) -> Vec<Op> {
    let mut script = Vec::with_capacity(n_ops);
    while script.len() < n_ops {
        // A picked kind may be infeasible (nothing to free yet, say);
        // resample a bounded number of times, then fall back to a malloc,
        // which is always legal and unblocks everything else.
        let op = (0..8)
            .find_map(|_| try_op(rng, model, cfg))
            .unwrap_or(Op::Malloc {
                dst: 1,
                size: cfg.sizes[0],
            });
        model.apply(op);
        script.push(op);
    }
    script
}

/// The script's terminal act: either a benign epilogue or one constructed
/// violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Payload {
    /// No violation: the victim is freed and the program halts cleanly.
    Benign,
    /// Use-after-free of the victim allocation, through one of the
    /// aliasing routes.
    UseAfterFree(Route),
    /// Use-after-free where the freed chunk is first *reallocated* by a
    /// same-size malloc (guaranteed LIFO address reuse): the Fig. 1-left /
    /// Table 1 case a location-based checker is blind to.
    UseAfterRealloc,
    /// The victim is freed twice.
    DoubleFree,
    /// A frame-local address escapes through a global and is dereferenced
    /// after the frame pops (CWE-562 shape).
    UseAfterReturn,
    /// A §7 custom allocator: the program carves a sub-object out of the
    /// (still-live) victim region and manages its identifier itself with
    /// `newident`/`setident`/`killident` — then dereferences the
    /// sub-object after returning it to the pool. The region stays
    /// allocated, so location-based checking is blind; the killed
    /// identifier catches the use exactly.
    PoolUseAfterFree,
    /// Dereference of a fabricated address that never had an identifier.
    WildPointer,
    /// `free` of a register that never held a valid pointer.
    InvalidFree,
}

/// How the dangling pointer reaches its dereference in a
/// [`Payload::UseAfterFree`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Route {
    /// Through the freeing register itself.
    Direct,
    /// Through an interior alias created by pointer arithmetic.
    Alias,
    /// Stashed to a global before the free, reloaded after (shadow-space
    /// round trip).
    Stash,
    /// Passed to a callee that performs the dereference (the faulting
    /// instruction lives in another function).
    Call,
}

/// Ground truth for one generated program: what the differential harness
/// must observe under identifier-based checking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Oracle {
    /// The payload the program was built around.
    pub payload: Payload,
    /// Expected violation under Watchdog modes (`None` = must run clean).
    pub expected: Option<ViolationKind>,
    /// Instruction index the violation must be raised at.
    pub expected_pc: Option<usize>,
    /// Whether location-based checking (§2.1) is expected to *miss* the
    /// violation (the reallocation case).
    pub location_blind: bool,
}

/// One generated case: the program, its benign twin and the oracle.
#[derive(Debug, Clone)]
pub struct Generated {
    /// The generating seed (the complete reproduction recipe).
    pub seed: u64,
    /// The program under test (violating unless the payload is benign).
    pub program: Program,
    /// The benign twin: same script, payload defused. Must run clean
    /// under every checking mode.
    pub twin: Program,
    /// Ground truth.
    pub oracle: Oracle,
}

impl Generated {
    /// FNV-1a digest over both programs' disassembly and the oracle —
    /// a compact fingerprint for determinism assertions.
    pub fn digest(&self) -> u64 {
        let mut h = crate::FNV_OFFSET;
        for text in [
            self.program.disassemble(),
            self.twin.disassemble(),
            format!("{:?}", self.oracle),
        ] {
            crate::fnv1a(&mut h, &text);
        }
        h
    }
}

/// Emission context: pre-emitted helper functions and global slots.
struct Helpers {
    fn_access: Label,
    /// Instruction index of the dereference inside the access helper.
    fn_access_pc: usize,
    fn_frame: Label,
    fn_publish: Label,
    /// Global slot the publish helper writes the escaping address to.
    pub_slot: u64,
    /// Global slot reserved for the payload's stash route.
    payload_stash: u64,
    /// Base of the script's stash array.
    stash_base: u64,
}

fn emit_helpers(b: &mut ProgramBuilder) -> Helpers {
    let pub_slot = b.global_bytes(8, 8);
    let payload_stash = b.global_bytes(8, 8);
    let stash_base = b.global_array_u64(GSLOTS as u64);
    let main = b.label();
    b.jmp(main);
    // fn_access(ADDR): dereference the argument pointer.
    let fn_access = b.here();
    let fn_access_pc = b.next_index();
    b.ld8(CALLEE, ADDR, 0);
    b.ret();
    // fn_frame(): allocate a frame, store/load a local, return.
    let fn_frame = b.here();
    b.alui(AluOp::Sub, Gpr::RSP, Gpr::RSP, 32);
    b.st8(CALLEE, Gpr::RSP, 0);
    b.ld8(CALLEE, Gpr::RSP, 0);
    b.alui(AluOp::Add, Gpr::RSP, Gpr::RSP, 32);
    b.ret();
    // fn_publish(): escape a frame-local address through `pub_slot`.
    let fn_publish = b.here();
    b.alui(AluOp::Sub, Gpr::RSP, Gpr::RSP, 32);
    b.li(CALLEE, 7);
    b.st8(CALLEE, Gpr::RSP, 0);
    b.lea(ADDR, Gpr::RSP, 0);
    b.lea_global(CALLEE, pub_slot);
    b.st8(ADDR, CALLEE, 0);
    b.alui(AluOp::Add, Gpr::RSP, Gpr::RSP, 32);
    b.ret();
    b.bind(main);
    Helpers {
        fn_access,
        fn_access_pc,
        fn_frame,
        fn_publish,
        pub_slot,
        payload_stash,
        stash_base,
    }
}

fn emit_op(b: &mut ProgramBuilder, h: &Helpers, op: Op) {
    match op {
        Op::Malloc { dst, size } => {
            b.li(SIZE, size as i64);
            b.malloc(slot(dst), SIZE);
        }
        Op::Free { s } => {
            b.free(slot(s));
        }
        Op::Copy { dst, src } => {
            b.mov(slot(dst), slot(src));
        }
        Op::Lea { dst, src, delta } => {
            b.lea(slot(dst), slot(src), delta);
        }
        Op::StoreInt { s, disp, val } => {
            b.li(SCRATCH, val);
            b.st8(SCRATCH, slot(s), disp);
        }
        Op::LoadInt { s, disp } => {
            b.ld8(SCRATCH, slot(s), disp);
        }
        Op::PtrStore { dst, disp, src } => {
            b.st8(slot(src), slot(dst), disp);
        }
        Op::PtrLoad { dst, src, disp } => {
            b.ld8(slot(dst), slot(src), disp);
        }
        Op::StashStore { g, src } => {
            b.lea_global(ADDR, h.stash_base + 8 * g as u64);
            b.st8(slot(src), ADDR, 0);
        }
        Op::StashLoad { dst, g } => {
            b.lea_global(ADDR, h.stash_base + 8 * g as u64);
            b.ld8(slot(dst), ADDR, 0);
        }
        Op::CallAccess { s } => {
            b.mov(ADDR, slot(s));
            b.call(h.fn_access);
        }
        Op::CallFrame => {
            b.call(h.fn_frame);
        }
        Op::LoopLoad { s, disp, iters } => {
            b.li(CTR, 0);
            b.li(BOUND, iters);
            let top = b.here();
            b.ld8(SCRATCH, slot(s), disp);
            b.addi(CTR, CTR, 1);
            b.branch(Cond::Lt, CTR, BOUND, top);
        }
    }
}

/// Parameters the payload emitters need; sampled once so the bad program
/// and the twin are built from identical ingredients.
struct PayloadPlan {
    payload: Payload,
    /// Victim allocation size.
    vsize: u64,
    /// In-bounds, 8-aligned dereference offset into the victim.
    off: i32,
    /// Fabricated address for the wild/invalid payloads: inside the global
    /// segment (so a baseline read is harmless and location-based
    /// checking, which tracks the heap only, stays silent).
    wild_addr: i64,
}

/// Emits the payload; returns the faulting instruction's index for bad
/// emissions of violating payloads.
fn emit_payload(
    b: &mut ProgramBuilder,
    h: &Helpers,
    plan: &PayloadPlan,
    bad: bool,
) -> Option<usize> {
    let victim = slot(0);
    match plan.payload {
        Payload::Benign => {
            b.free(victim);
            None
        }
        Payload::UseAfterFree(route) => {
            let pc = match (route, bad) {
                (Route::Direct, true) => {
                    b.free(victim);
                    let pc = b.next_index();
                    b.ld8(SCRATCH, victim, plan.off);
                    pc
                }
                (Route::Direct, false) => {
                    b.ld8(SCRATCH, victim, plan.off);
                    b.free(victim);
                    0
                }
                (Route::Alias, true) => {
                    b.lea(ALIAS, victim, plan.off);
                    b.free(victim);
                    let pc = b.next_index();
                    b.ld8(SCRATCH, ALIAS, 0);
                    pc
                }
                (Route::Alias, false) => {
                    b.lea(ALIAS, victim, plan.off);
                    b.ld8(SCRATCH, ALIAS, 0);
                    b.free(victim);
                    0
                }
                (Route::Stash, true) => {
                    b.lea_global(ADDR, h.payload_stash);
                    b.st8(victim, ADDR, 0);
                    b.free(victim);
                    b.lea_global(ADDR, h.payload_stash);
                    b.ld8(ALIAS, ADDR, 0);
                    let pc = b.next_index();
                    b.ld8(SCRATCH, ALIAS, plan.off);
                    pc
                }
                (Route::Stash, false) => {
                    b.lea_global(ADDR, h.payload_stash);
                    b.st8(victim, ADDR, 0);
                    b.lea_global(ADDR, h.payload_stash);
                    b.ld8(ALIAS, ADDR, 0);
                    b.ld8(SCRATCH, ALIAS, plan.off);
                    b.free(victim);
                    0
                }
                (Route::Call, true) => {
                    b.free(victim);
                    b.mov(ADDR, victim);
                    b.call(h.fn_access);
                    h.fn_access_pc
                }
                (Route::Call, false) => {
                    b.mov(ADDR, victim);
                    b.call(h.fn_access);
                    b.free(victim);
                    0
                }
            };
            bad.then_some(pc)
        }
        Payload::UseAfterRealloc => {
            // The alias dangles; a same-size malloc recycles the chunk
            // (LIFO), so the dangling dereference lands in *live* memory —
            // invisible to location-based checking, caught by the
            // never-reused key.
            b.lea(ALIAS, victim, plan.off);
            b.free(victim);
            b.li(SIZE, plan.vsize as i64);
            b.malloc(slot(4), SIZE);
            if bad {
                let pc = b.next_index();
                b.ld8(SCRATCH, ALIAS, 0);
                Some(pc)
            } else {
                b.ld8(SCRATCH, slot(4), plan.off);
                b.free(slot(4));
                None
            }
        }
        Payload::DoubleFree => {
            b.free(victim);
            if bad {
                let pc = b.next_index();
                b.free(victim);
                Some(pc)
            } else {
                None
            }
        }
        Payload::PoolUseAfterFree => {
            // Pool-allocator instrumentation (§7, promoted from
            // `examples/custom_allocator.rs`): obj_a gets its own
            // identifier; obj_b is an uninstrumented sibling that keeps
            // inheriting the region's identifier and must stay valid
            // throughout.
            let off_b = ((plan.off as u64 + 8) % plan.vsize) as i32;
            b.lea(ALIAS, victim, plan.off); // obj_a = region + off
            b.new_ident(CTR, BOUND); // fresh key + lock location
            b.set_ident(ALIAS, CTR, BOUND);
            b.li(SCRATCH, 11);
            b.st8(SCRATCH, ALIAS, 0); // use obj_a while pool-live
            b.lea(ADDR, victim, off_b); // obj_b, uninstrumented
            b.li(SCRATCH, 22);
            b.st8(SCRATCH, ADDR, 0); // checked against the region's id
            if bad {
                b.kill_ident(CTR, BOUND); // pool-free of obj_a
                let pc = b.next_index();
                b.ld8(SCRATCH, ALIAS, 0); // sub-object use-after-free
                Some(pc)
            } else {
                b.ld8(SCRATCH, ALIAS, 0); // use *before* the pool-free
                b.kill_ident(CTR, BOUND);
                b.ld8(SCRATCH, ADDR, 0); // the sibling outlives the kill
                b.free(victim);
                None
            }
        }
        Payload::UseAfterReturn => {
            b.call(h.fn_publish);
            b.lea_global(CALLEE, h.pub_slot);
            b.ld8(ADDR, CALLEE, 0);
            if bad {
                let pc = b.next_index();
                b.ld8(SCRATCH, ADDR, 0);
                Some(pc)
            } else {
                // The twin reloads the escaped address but never
                // dereferences it (holding a dangling pointer is legal).
                None
            }
        }
        Payload::WildPointer => {
            if bad {
                b.li(ADDR, plan.wild_addr);
                let pc = b.next_index();
                b.ld8(SCRATCH, ADDR, 0);
                Some(pc)
            } else {
                b.ld8(SCRATCH, victim, 0);
                b.free(victim);
                None
            }
        }
        Payload::InvalidFree => {
            if bad {
                b.li(ADDR, plan.wild_addr);
                let pc = b.next_index();
                b.free(ADDR);
                Some(pc)
            } else {
                b.free(victim);
                None
            }
        }
    }
}

fn emit(seed: u64, script: &[Op], plan: &PayloadPlan, bad: bool) -> (Program, Option<usize>) {
    let name = if bad {
        format!("gen-{seed}")
    } else {
        format!("gen-{seed}-twin")
    };
    let mut b = ProgramBuilder::new(name);
    let h = emit_helpers(&mut b);
    // The victim allocation: slot 0, never freed or overwritten by the
    // script, so every payload finds it live with a base pointer.
    b.li(SIZE, plan.vsize as i64);
    b.malloc(slot(0), SIZE);
    for op in script {
        emit_op(&mut b, &h, *op);
    }
    let pc = emit_payload(&mut b, &h, plan, bad);
    b.halt();
    let program = b
        .build()
        .unwrap_or_else(|e| panic!("seed {seed}: generated program failed to build: {e}"));
    (program, pc)
}

fn sample_payload(rng: &mut Rng) -> Payload {
    match rng.below(24) {
        0..=5 => Payload::Benign,
        6..=9 => Payload::UseAfterFree(match rng.below(4) {
            0 => Route::Direct,
            1 => Route::Alias,
            2 => Route::Stash,
            _ => Route::Call,
        }),
        10..=12 => Payload::UseAfterRealloc,
        13..=14 => Payload::DoubleFree,
        15..=16 => Payload::UseAfterReturn,
        17..=18 => Payload::WildPointer,
        19..=20 => Payload::InvalidFree,
        _ => Payload::PoolUseAfterFree,
    }
}

/// Generates the case for `seed`: program, benign twin and oracle. Pure —
/// the same seed and config produce byte-identical output on every
/// platform and every call.
pub fn generate(seed: u64, cfg: &GenConfig) -> Generated {
    let mut rng = Rng::new(seed);
    let payload = sample_payload(&mut rng);
    let vsize = *rng.pick(&cfg.sizes);
    let span = (cfg.max_ops - cfg.min_ops + 1) as u64;
    let n_ops = cfg.min_ops + rng.below(span) as usize;
    let mut model = Model::new(vsize);
    let script = sample_script(&mut rng, &mut model, n_ops, cfg);
    let plan = PayloadPlan {
        payload,
        vsize,
        off: aligned_off(&mut rng, vsize) as i32,
        wild_addr: (GLOBAL_BASE + GLOBAL_SIZE - 0x1000 + 8 * rng.below(64)) as i64,
    };
    let (program, expected_pc) = emit(seed, &script, &plan, true);
    let (twin, _) = emit(seed, &script, &plan, false);
    let expected = match payload {
        Payload::Benign => None,
        Payload::UseAfterFree(_) | Payload::UseAfterRealloc | Payload::PoolUseAfterFree => {
            Some(ViolationKind::UseAfterFree)
        }
        Payload::DoubleFree => Some(ViolationKind::DoubleFree),
        Payload::UseAfterReturn => Some(ViolationKind::UseAfterReturn),
        Payload::WildPointer => Some(ViolationKind::WildPointer),
        Payload::InvalidFree => Some(ViolationKind::InvalidFree),
    };
    Generated {
        seed,
        program,
        twin,
        oracle: Oracle {
            payload,
            expected,
            expected_pc,
            location_blind: matches!(
                payload,
                Payload::UseAfterRealloc | Payload::PoolUseAfterFree
            ),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = GenConfig::default();
        for seed in 0..20 {
            let a = generate(seed, &cfg);
            let b = generate(seed, &cfg);
            assert_eq!(a.program.disassemble(), b.program.disassemble());
            assert_eq!(a.twin.disassemble(), b.twin.disassemble());
            assert_eq!(a.oracle, b.oracle);
            assert_eq!(a.digest(), b.digest());
        }
    }

    #[test]
    fn seeds_produce_distinct_programs() {
        let cfg = GenConfig::default();
        let mut digests = std::collections::HashSet::new();
        for seed in 0..50 {
            digests.insert(generate(seed, &cfg).digest());
        }
        assert!(digests.len() >= 49, "seeds must explore distinct programs");
    }

    #[test]
    fn every_payload_kind_is_reachable() {
        let cfg = GenConfig::default();
        let mut kinds = std::collections::HashSet::new();
        for seed in 0..200 {
            kinds.insert(std::mem::discriminant(&generate(seed, &cfg).oracle.payload));
        }
        assert!(kinds.len() >= 8, "all eight payload kinds within 200 seeds");
    }

    #[test]
    fn pool_payloads_use_custom_allocator_instrumentation() {
        // The §7 custom-allocator family: sub-object UAF through
        // newident/setident/killident, with a benign twin, and blind to
        // location-based checking (the region is still allocated).
        let cfg = GenConfig::default();
        let pools: Vec<Generated> = (0..300)
            .map(|s| generate(s, &cfg))
            .filter(|g| g.oracle.payload == Payload::PoolUseAfterFree)
            .collect();
        assert!(!pools.is_empty(), "pool payloads are reachable");
        for g in &pools {
            assert_eq!(g.oracle.expected, Some(ViolationKind::UseAfterFree));
            assert!(g.oracle.location_blind, "pool frees leave the region live");
            let text = g.program.disassemble();
            for op in ["newident", "setident", "killident"] {
                assert!(text.contains(op), "missing {op} in:\n{text}");
            }
        }
    }

    #[test]
    fn oracles_are_consistent_with_payloads() {
        let cfg = GenConfig::default();
        for seed in 0..100 {
            let g = generate(seed, &cfg);
            match g.oracle.payload {
                Payload::Benign => {
                    assert_eq!(g.oracle.expected, None);
                    assert_eq!(g.oracle.expected_pc, None);
                }
                _ => {
                    assert!(g.oracle.expected.is_some());
                    let pc = g.oracle.expected_pc.expect("bad cases know their pc");
                    assert!(pc < g.program.len());
                }
            }
            assert_eq!(
                g.oracle.location_blind,
                matches!(
                    g.oracle.payload,
                    Payload::UseAfterRealloc | Payload::PoolUseAfterFree
                )
            );
        }
    }
}

//! Full memory safety: the §8 bounds extension catches spatial violations
//! (buffer overflows) on top of temporal ones, with the fused-µop and
//! split-µop implementations of Fig. 11.
//!
//! Run with: `cargo run --example full_memory_safety`

use watchdog::prelude::*;

/// A classic linear buffer overflow: write one element past the end of a
/// heap array (off-by-one in the loop bound).
fn overflow_program() -> Program {
    let mut b = ProgramBuilder::new("overflow");
    let (buf, sz, i, n, addr, v) = (
        Gpr::new(0),
        Gpr::new(1),
        Gpr::new(2),
        Gpr::new(3),
        Gpr::new(4),
        Gpr::new(5),
    );
    b.li(sz, 64); // 8 elements
    b.malloc(buf, sz);
    b.li(i, 0);
    b.li(n, 9); // off-by-one: writes 9 elements
    let top = b.here();
    b.alui(AluOp::Mul, addr, i, 8);
    b.add(addr, buf, addr);
    b.li(v, 0x41);
    b.st8(v, addr, 0);
    b.addi(i, i, 1);
    b.branch(Cond::Lt, i, n, top);
    b.free(buf);
    b.halt();
    b.build().expect("builds")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = overflow_program();
    println!("Off-by-one heap overflow (writes 9 elements into an 8-element buffer)\n");

    let modes = [
        Mode::Baseline,
        Mode::watchdog(), // temporal only: overflow is invisible
        Mode::WatchdogBounds {
            ptr: PointerId::IsaAssisted,
            uops: BoundsUops::Fused,
        },
        Mode::WatchdogBounds {
            ptr: PointerId::IsaAssisted,
            uops: BoundsUops::Split,
        },
    ];
    for mode in modes {
        let report = Simulator::new(SimConfig::functional(mode)).run(&program)?;
        match report.violation {
            Some(v) => println!("{:<36} DETECTED: {v}", mode.label()),
            None => println!("{:<36} overflow undetected", mode.label()),
        }
    }

    // Cost of full memory safety on a real kernel (Fig. 11's comparison).
    println!("\nCost of full memory safety on `gzip` (Test scale):");
    let k = benchmark("gzip").expect("registered").build(Scale::Test);
    let base = Simulator::new(SimConfig::timed(Mode::Baseline)).run(&k)?;
    for mode in [
        Mode::watchdog(),
        Mode::WatchdogBounds {
            ptr: PointerId::IsaAssisted,
            uops: BoundsUops::Fused,
        },
        Mode::WatchdogBounds {
            ptr: PointerId::IsaAssisted,
            uops: BoundsUops::Split,
        },
    ] {
        let r = Simulator::new(SimConfig::timed(mode)).run(&k)?;
        println!(
            "  {:<36} {:+.1}% runtime",
            mode.label(),
            r.slowdown_vs(&base) * 100.0
        );
    }
    println!("(paper: UAF-only 15%, +bounds 1 µop 18%, +bounds 2 µops 24%)");
    Ok(())
}

//! Quickstart: build a guest program, run it under Watchdog, observe a
//! use-after-free being caught that the unchecked baseline misses.
//!
//! Run with: `cargo run --example quickstart`

use watchdog::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A tiny guest program: p = malloc(64); *p = 7; free(p); v = *p.
    let mut b = ProgramBuilder::new("quickstart");
    let (p, sz, v) = (Gpr::new(0), Gpr::new(1), Gpr::new(2));
    b.li(sz, 64);
    b.malloc(p, sz);
    b.li(v, 7);
    b.st8(v, p, 0);
    b.free(p);
    b.ld8(v, p, 0); // use after free!
    b.halt();
    let program = b.build()?;

    println!(
        "Program: {} ({} instructions)\n",
        program.name(),
        program.len()
    );

    for mode in [
        Mode::Baseline,
        Mode::LocationBased,
        Mode::watchdog_conservative(),
    ] {
        let report = Simulator::new(SimConfig::functional(mode)).run(&program)?;
        match report.violation {
            Some(violation) => println!("{:<22} DETECTED: {violation}", mode.label()),
            None => println!("{:<22} ran to completion (bug undetected)", mode.label()),
        }
    }

    // With the timing model: how much does checking cost on a real kernel?
    println!("\nTiming the `mcf` kernel (pointer-chasing, Test scale):");
    let mcf = benchmark("mcf").expect("registered").build(Scale::Test);
    let base = Simulator::new(SimConfig::timed(Mode::Baseline)).run(&mcf)?;
    let wd = Simulator::new(SimConfig::timed(Mode::watchdog())).run(&mcf)?;
    println!(
        "  baseline: {} cycles ({} µops)",
        base.cycles(),
        base.uops()
    );
    println!(
        "  watchdog: {} cycles ({} µops) — {:.1}% slowdown for {:.1}% more µops",
        wd.cycles(),
        wd.uops(),
        wd.slowdown_vs(&base) * 100.0,
        wd.uop_overhead() * 100.0
    );
    Ok(())
}

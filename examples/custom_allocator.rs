//! Custom memory allocators (§7): "For programs that use custom memory
//! allocators (e.g., by requesting a region of memory which it then
//! partitions), by default Watchdog will check the allocation status of
//! the entire region of memory. However, if the programmer instruments the
//! custom memory allocator, Watchdog will then be able to perform exact
//! checking for these allocators."
//!
//! This example builds a guest-side *pool allocator* both ways:
//!
//! 1. **Uninstrumented**: sub-objects inherit the region's identifier —
//!    freeing a sub-object back to the pool is invisible, and a
//!    use-after-pool-free goes undetected (the region is still live).
//! 2. **Instrumented**: the pool calls `newident`/`setident` when carving
//!    a sub-object and `killident` when recycling it — the dangling
//!    sub-object pointer is caught exactly.
//!
//! Run with: `cargo run --example custom_allocator`

use watchdog::prelude::*;

/// Builds the pool-allocator scenario. When `instrumented`, the pool
/// manages identifiers with `newident`/`setident`/`killident`.
fn pool_program(instrumented: bool) -> Program {
    let mut b = ProgramBuilder::new(if instrumented {
        "pool-instrumented"
    } else {
        "pool-plain"
    });
    let (region, obj_a, obj_b, sz, v) = (
        Gpr::new(0),
        Gpr::new(1),
        Gpr::new(2),
        Gpr::new(3),
        Gpr::new(4),
    );
    let (key_a, lock_a) = (Gpr::new(5), Gpr::new(6));

    // The custom allocator grabs one big region from malloc…
    b.li(sz, 4096);
    b.malloc(region, sz);
    // …and partitions it: obj_a = region[0..64), obj_b = region[64..128).
    b.lea(obj_a, region, 0);
    b.lea(obj_b, region, 64);
    if instrumented {
        // Instrumentation: obj_a gets its own identifier (and exact
        // bounds, if the bounds extension is on).
        b.new_ident(key_a, lock_a);
        b.set_ident(obj_a, key_a, lock_a);
    }
    // Use both objects.
    b.li(v, 11);
    b.st8(v, obj_a, 0);
    b.li(v, 22);
    b.st8(v, obj_b, 0);
    // The pool "frees" obj_a (returns it to the free list). The region
    // itself stays allocated.
    if instrumented {
        b.kill_ident(key_a, lock_a);
    }
    // BUG: use after pool-free.
    b.ld8(v, obj_a, 0);
    // obj_b remains perfectly valid either way.
    b.ld8(v, obj_b, 0);
    b.free(region);
    b.halt();
    b.build().expect("builds")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("A pool allocator carves obj_a and obj_b out of one malloc'd region;");
    println!("obj_a is returned to the pool and then (wrongly) dereferenced.\n");

    let sim = Simulator::new(SimConfig::functional(Mode::watchdog_conservative()));

    let plain = sim.run(&pool_program(false))?;
    match plain.violation {
        None => println!(
            "uninstrumented pool:  bug UNDETECTED — obj_a carries the region's identifier,\n\
             {:22}and the region is still allocated (the §7 default)",
            ""
        ),
        Some(v) => println!("uninstrumented pool:  unexpectedly detected: {v}"),
    }

    let inst = sim.run(&pool_program(true))?;
    match inst.violation {
        Some(v) => println!(
            "instrumented pool:    bug DETECTED exactly: {v}\n\
             {:22}(newident/setident/killident give each sub-object its own identifier)",
            ""
        ),
        None => println!("instrumented pool:    MISSED (this would be a reproduction bug)"),
    }

    // Sanity: in both variants obj_b and the region behave normally.
    assert!(plain.violation.is_none());
    assert_eq!(inst.violation.unwrap().kind, ViolationKind::UseAfterFree);
    Ok(())
}

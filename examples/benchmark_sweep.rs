//! Sweep all twenty SPEC-lookalike kernels under the main modes and print
//! a compact overhead summary — a miniature of Figures 5 and 7.
//!
//! Run with: `cargo run --release --example benchmark_sweep`

use watchdog::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "{:<8} {:>10} {:>10} {:>12} {:>12} {:>10}",
        "bench", "base kIPC", "ptr% cons", "ptr% isa", "ovh cons", "ovh isa"
    );
    let mut cons_all = Vec::new();
    let mut isa_all = Vec::new();
    for spec in all_benchmarks() {
        let p = spec.build(Scale::Test);
        let base = Simulator::new(SimConfig::timed(Mode::Baseline)).run(&p)?;
        let cons = Simulator::new(SimConfig::timed(Mode::watchdog_conservative())).run(&p)?;
        let isa = Simulator::new(SimConfig::timed(Mode::watchdog())).run(&p)?;
        let oc = cons.slowdown_vs(&base);
        let oi = isa.slowdown_vs(&base);
        cons_all.push(oc);
        isa_all.push(oi);
        println!(
            "{:<8} {:>10.2} {:>9.1}% {:>11.1}% {:>11.1}% {:>9.1}%",
            spec.name,
            base.timing.as_ref().map_or(0.0, |t| t.ipc()),
            cons.ptr_fraction() * 100.0,
            isa.ptr_fraction() * 100.0,
            oc * 100.0,
            oi * 100.0
        );
    }
    let gm = |xs: &[f64]| watchdog::core::report::geomean_overhead(xs) * 100.0;
    println!(
        "\nGeo. mean overhead: conservative {:.1}%, ISA-assisted {:.1}%",
        gm(&cons_all),
        gm(&isa_all)
    );
    println!("(paper: 25% and 15%)");
    Ok(())
}
